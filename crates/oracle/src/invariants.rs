//! Metamorphic-invariant checker: graph-theory laws that must hold on
//! *any* input, no reference run required.
//!
//! Each law is checked against the optimized kernels' own outputs, so a
//! violation here means a kernel (or the CSR representation itself) broke
//! mathematics, not merely that two implementations disagree:
//!
//! * out-degree sum == |E| == in-degree sum, and both CSR halves are
//!   sorted, deduplicated and exact transposes of each other;
//! * the reciprocal-edge set is symmetric;
//! * SCC refines WCC (strongly connected ⇒ weakly connected);
//! * clustering coefficients lie in `[0, 1]`;
//! * BFS levels are monotone: every level-`d+1` node has a level-`d`
//!   in-neighbor, levels partition the reachable set, and per-level
//!   counts agree with the aggregate kernel;
//! * the hub-first relabel permutation is a bijection that preserves the
//!   edge multiset;
//! * the motif census obeys its metamorphic laws: the 7 class totals sum
//!   to the undirected triangle count, the all-reciprocal class agrees
//!   with a census of the reciprocal-pair subgraph, class counts are
//!   invariant under the relabel permutation, and reversing every edge
//!   maps each class to its mirror class.

use crate::differential::sample_nodes;
use gplus_graph::builder::from_edges;
use gplus_graph::relabel::Relabeling;
use gplus_graph::{bfs, clustering, motifs, reciprocity, scc, wcc, CsrGraph, NodeId};
use std::collections::HashSet;

/// Checks every metamorphic law on `g`; returns one human-readable
/// violation per broken law (empty = all laws hold). `seed` drives the
/// BFS-source and clustering-node samples deterministically.
pub fn check_graph(g: &CsrGraph, seed: u64) -> Vec<String> {
    let mut violations = Vec::new();
    degree_sum_law(g, &mut violations);
    csr_well_formed(g, &mut violations);
    reciprocal_symmetry(g, &mut violations);
    scc_refines_wcc(g, &mut violations);
    clustering_bounds(g, seed, &mut violations);
    bfs_level_monotonicity(g, seed, &mut violations);
    relabel_bijection(g, &mut violations);
    motif_laws(g, &mut violations);
    violations
}

fn degree_sum_law(g: &CsrGraph, out: &mut Vec<String>) {
    let m = g.edge_count();
    let out_sum: usize = g.nodes().map(|u| g.out_degree(u)).sum();
    let in_sum: usize = g.nodes().map(|u| g.in_degree(u)).sum();
    if out_sum != m || in_sum != m {
        out.push(format!(
            "degree-sum law broken: sum(out)={out_sum}, |E|={m}, sum(in)={in_sum}"
        ));
    }
}

fn csr_well_formed(g: &CsrGraph, out: &mut Vec<String>) {
    for u in g.nodes() {
        for (label, row) in [("out", g.out_neighbors(u)), ("in", g.in_neighbors(u))] {
            if !row.windows(2).all(|w| w[0] < w[1]) {
                out.push(format!("{label}-neighbors of {u} not sorted+deduplicated: {row:?}"));
                return;
            }
        }
    }
    // the reverse half must be the exact transpose of the forward half
    let forward: HashSet<(NodeId, NodeId)> = g.edges().collect();
    let mut reverse_count = 0usize;
    for v in g.nodes() {
        for &u in g.in_neighbors(v) {
            reverse_count += 1;
            if !forward.contains(&(u, v)) {
                out.push(format!("reverse half has ({u},{v}) missing from forward half"));
                return;
            }
        }
    }
    if reverse_count != forward.len() {
        out.push(format!(
            "reverse half holds {reverse_count} edges, forward holds {}",
            forward.len()
        ));
    }
}

fn reciprocal_symmetry(g: &CsrGraph, out: &mut Vec<String>) {
    let mut pairs = 0u64;
    for (u, v) in reciprocity::reciprocal_pairs(g) {
        pairs += 1;
        if u >= v {
            out.push(format!("reciprocal_pairs yielded unordered pair ({u},{v})"));
            return;
        }
        if !g.has_edge(u, v) || !g.has_edge(v, u) {
            out.push(format!("reciprocal pair ({u},{v}) lacks one direction"));
            return;
        }
    }
    let counted = reciprocity::reciprocal_pair_count(g);
    if pairs != counted {
        out.push(format!(
            "reciprocal-edge set asymmetric: iterator yields {pairs} pairs, count says {counted}"
        ));
    }
}

fn scc_refines_wcc(g: &CsrGraph, out: &mut Vec<String>) {
    let s = scc::kosaraju(g);
    let w = wcc::weakly_connected_components(g);
    if w.count > s.count {
        out.push(format!("WCC count {} exceeds SCC count {}", w.count, s.count));
        return;
    }
    // within one SCC, all members share a WCC label: check a canonical
    // member per SCC id instead of all O(n²) pairs
    let mut wcc_of_scc = vec![u32::MAX; s.count];
    for v in g.nodes() {
        let sc = s.component[v as usize] as usize;
        let wc = w.component[v as usize];
        if wcc_of_scc[sc] == u32::MAX {
            wcc_of_scc[sc] = wc;
        } else if wcc_of_scc[sc] != wc {
            out.push(format!(
                "SCC does not refine WCC: node {v} in SCC {sc} has WCC {wc}, expected {}",
                wcc_of_scc[sc]
            ));
            return;
        }
    }
}

fn clustering_bounds(g: &CsrGraph, seed: u64, out: &mut Vec<String>) {
    for u in sample_nodes(g, seed ^ 0xc1, 512) {
        if let Some(cc) = clustering::clustering_coefficient(g, u) {
            if !(0.0..=1.0).contains(&cc) {
                out.push(format!("clustering coefficient of {u} out of [0,1]: {cc}"));
                return;
            }
        }
    }
}

fn bfs_level_monotonicity(g: &CsrGraph, seed: u64, out: &mut Vec<String>) {
    for s in sample_nodes(g, seed ^ 0xb5, 8) {
        let sets = bfs::level_sets(g, s);
        let aggregate = bfs::levels(g, s);
        let counts: Vec<u64> = sets.iter().map(|l| l.len() as u64).collect();
        if counts != aggregate.counts {
            out.push(format!(
                "level sets from {s} disagree with aggregate counts: {counts:?} vs {:?}",
                aggregate.counts
            ));
            return;
        }
        let mut seen: HashSet<NodeId> = HashSet::new();
        for (d, level) in sets.iter().enumerate() {
            for &v in level {
                if !seen.insert(v) {
                    out.push(format!("node {v} appears in two BFS levels from {s}"));
                    return;
                }
                // monotonicity: a level-d node (d >= 1) has a parent at d-1
                if d > 0 && !g.in_neighbors(v).iter().any(|u| sets[d - 1].contains(u)) {
                    out.push(format!(
                        "node {v} at level {d} from {s} has no level-{} in-neighbor",
                        d - 1
                    ));
                    return;
                }
            }
        }
    }
}

fn relabel_bijection(g: &CsrGraph, out: &mut Vec<String>) {
    let r = Relabeling::degree_descending(g);
    let n = g.node_count();
    if r.len() != n {
        out.push(format!("relabeling covers {} nodes of {n}", r.len()));
        return;
    }
    let mut hit = vec![false; n];
    for old in g.nodes() {
        let new = r.to_new(old);
        if (new as usize) >= n || hit[new as usize] {
            out.push(format!("relabel not a bijection: old {old} -> new {new}"));
            return;
        }
        hit[new as usize] = true;
        if r.to_old(new) != old {
            out.push(format!("relabel round-trip broken at old id {old}"));
            return;
        }
    }
    // the permuted graph holds exactly the mapped edge multiset
    let h = r.apply(g);
    let mut mapped: Vec<(NodeId, NodeId)> =
        g.edges().map(|(u, v)| (r.to_new(u), r.to_new(v))).collect();
    mapped.sort_unstable();
    if h.edge_list() != mapped {
        out.push("relabel apply() does not preserve the edge multiset".to_string());
    }
}

/// The motif census's four metamorphic laws. Each is a mathematical
/// identity on *any* digraph, so they need no reference run:
///
/// 1. every triangle lands in exactly one of the 7 classes, so the class
///    totals sum to the undirected triangle count;
/// 2. keeping only reciprocal pairs (via the `reciprocity` kernel) keeps
///    exactly the all-mutual `300` triangles and nothing else;
/// 3. a census is blind to node ids: any relabel permutation preserves
///    the totals and permutes the participation vector along with it;
/// 4. reversing every edge maps each class to `MIRROR[class]` and leaves
///    participation untouched.
fn motif_laws(g: &CsrGraph, out: &mut Vec<String>) {
    let census = motifs::census(g);

    let undirected = motifs::undirected_triangle_count(g);
    if census.triangle_total() != undirected {
        out.push(format!(
            "motif class totals sum to {} but the graph has {undirected} undirected triangles",
            census.triangle_total()
        ));
        return;
    }

    let mutual_edges: Vec<(NodeId, NodeId)> =
        reciprocity::reciprocal_pairs(g).flat_map(|(u, v)| [(u, v), (v, u)]).collect();
    let mutual = motifs::census(&from_edges(g.node_count(), mutual_edges));
    let mut expect = [0u64; motifs::MOTIF_CLASSES];
    expect[motifs::MOTIF_CLASSES - 1] = census.totals[motifs::MOTIF_CLASSES - 1];
    if mutual.totals != expect {
        out.push(format!(
            "reciprocal-pair subgraph census {:?} disagrees with the all-mutual class of the \
             full census {:?}",
            mutual.totals, census.totals
        ));
        return;
    }

    let r = Relabeling::degree_descending(g);
    let relabeled = motifs::census(&r.apply(g));
    if relabeled.totals != census.totals {
        out.push(format!(
            "motif totals not relabel-invariant: {:?} vs {:?} after permutation",
            census.totals, relabeled.totals
        ));
        return;
    }
    for old in g.nodes() {
        let new = r.to_new(old);
        if relabeled.per_node[new as usize] != census.per_node[old as usize] {
            out.push(format!(
                "motif participation of node {old} (relabeled {new}) changed under relabel: \
                 {} vs {}",
                census.per_node[old as usize], relabeled.per_node[new as usize]
            ));
            return;
        }
    }

    let reversed = motifs::census(&g.transpose());
    for (class, &mirror) in motifs::MIRROR.iter().enumerate() {
        if reversed.totals[mirror] != census.totals[class] {
            out.push(format!(
                "edge reversal broke the mirror law for class {}: {} forward vs {} reversed \
                 as {}",
                motifs::CLASS_NAMES[class],
                census.totals[class],
                reversed.totals[mirror],
                motifs::CLASS_NAMES[mirror]
            ));
            return;
        }
    }
    if reversed.per_node != census.per_node {
        out.push("edge reversal changed motif participation counts".to_string());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gplus_synth::{SynthConfig, SynthNetwork};

    #[test]
    fn laws_hold_on_handcrafted_graphs() {
        for (n, edges) in [
            (0usize, vec![]),
            (1, vec![(0, 0)]),
            (5, vec![(0, 1), (1, 0), (2, 3), (3, 4), (4, 2), (0, 4)]),
            (6, vec![(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]), // star
            // triangles of several motif classes sharing edges
            (6, vec![(0, 1), (1, 2), (0, 2), (2, 3), (3, 2), (4, 2), (4, 3), (4, 5), (5, 3)]),
        ] {
            let g = from_edges(n, edges.clone());
            let v = check_graph(&g, 7);
            assert!(v.is_empty(), "graph ({n}, {edges:?}) violated: {v:?}");
        }
    }

    #[test]
    fn laws_hold_on_a_synthetic_network() {
        let net = SynthNetwork::generate(&SynthConfig::google_plus_2011(1_500, 3));
        let v = check_graph(&net.graph, 3);
        assert!(v.is_empty(), "violations: {v:?}");
    }
}
