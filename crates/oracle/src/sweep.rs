//! Deterministic seed-sweep differential runner.
//!
//! [`run`] generates `gplus-synth` graphs across all three presets (plus
//! the adversarial tiny-graph shapes), runs the metamorphic invariants and
//! every optimized-vs-oracle differential on each, and on failure shrinks
//! the graph (greedy node/edge deletion preserving the failure) and writes
//! a self-contained reproducer JSON to the output directory. This is what
//! `gplus verify-kernels` drives.

use crate::differential::{self, DiffConfig, Mismatch};
use crate::{invariants, shrink};
use gplus_graph::{CsrGraph, NodeId};
use gplus_synth::{adversarial, SynthConfig, SynthNetwork};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// The three calibrated synth presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preset {
    /// The paper's Google+ 2011 calibration.
    GooglePlus,
    /// The Table 4 Twitter-like comparison network.
    Twitter,
    /// The Table 4 Facebook-like comparison network.
    Facebook,
}

impl Preset {
    /// All presets, sweep order.
    pub fn all() -> Vec<Preset> {
        vec![Preset::GooglePlus, Preset::Twitter, Preset::Facebook]
    }

    /// Stable name used in CLI flags and reproducer files.
    pub fn as_str(self) -> &'static str {
        match self {
            Preset::GooglePlus => "gplus",
            Preset::Twitter => "twitter",
            Preset::Facebook => "facebook",
        }
    }

    /// Parses a CLI preset name.
    pub fn parse(name: &str) -> Option<Preset> {
        match name {
            "gplus" | "google_plus" | "google-plus" => Some(Preset::GooglePlus),
            "twitter" => Some(Preset::Twitter),
            "facebook" => Some(Preset::Facebook),
            _ => None,
        }
    }

    /// The synth config of this preset at the given scale.
    pub fn config(self, nodes: usize, seed: u64) -> SynthConfig {
        match self {
            Preset::GooglePlus => SynthConfig::google_plus_2011(nodes, seed),
            Preset::Twitter => SynthConfig::twitter_like(nodes, seed),
            Preset::Facebook => SynthConfig::facebook_like(nodes, seed),
        }
    }
}

/// One sweep's shape: which graphs to generate and where failures land.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Seeds per preset (`0..seeds`).
    pub seeds: u64,
    /// Nodes per generated graph.
    pub nodes: usize,
    /// Presets to sweep.
    pub presets: Vec<Preset>,
    /// Whether to include the adversarial tiny-graph shapes.
    pub adversarial: bool,
    /// Directory reproducer JSONs are written to.
    pub out_dir: PathBuf,
    /// Differential budgets.
    pub diff: DiffConfig,
}

impl SweepConfig {
    /// All presets + adversarial shapes, reproducers under `target/oracle`.
    pub fn new(seeds: u64, nodes: usize) -> Self {
        Self {
            seeds,
            nodes,
            presets: Preset::all(),
            adversarial: true,
            out_dir: PathBuf::from("target/oracle"),
            diff: DiffConfig::new(0),
        }
    }
}

/// A self-contained counterexample: everything needed to replay one
/// failure without the generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Reproducer {
    /// Format tag.
    pub schema: String,
    /// Preset (or adversarial shape) the failing graph came from.
    pub preset: String,
    /// Generator seed.
    pub seed: u64,
    /// Kernel (or `invariants`) that failed.
    pub kernel: String,
    /// Human-readable failure locus on the *minimised* graph.
    pub detail: String,
    /// Node count of the minimised graph.
    pub nodes: usize,
    /// Edge list of the minimised graph.
    pub edges: Vec<(NodeId, NodeId)>,
    /// Reference result on the minimised graph.
    pub expected: serde_json::Value,
    /// Optimized-kernel result on the minimised graph.
    pub actual: serde_json::Value,
    /// Predicate evaluations the shrinker spent.
    pub shrink_steps: u64,
}

/// Reproducer format tag.
pub const REPRO_SCHEMA: &str = "gplus-oracle-repro/1";

/// Summary of one sweep.
#[derive(Debug, Clone, Default)]
pub struct SweepOutcome {
    /// Graphs generated and checked.
    pub graphs: usize,
    /// Kernel checks executed (differential kernels + one invariant pass
    /// per graph).
    pub checks: u64,
    /// Reproducer files written, one per failure.
    pub reproducers: Vec<PathBuf>,
    /// One-line failure descriptions, parallel to `reproducers`.
    pub failures: Vec<String>,
}

/// Runs the sweep. Deterministic for a given config; failures shrink and
/// land as reproducer JSONs in `cfg.out_dir`.
///
/// The work runs on a dedicated large-stack thread: the reference Tarjan
/// is recursive, and fuzzed graphs can be long chains.
pub fn run(cfg: &SweepConfig) -> std::io::Result<SweepOutcome> {
    let cfg = cfg.clone();
    std::thread::Builder::new()
        .name("oracle-sweep".into())
        .stack_size(256 << 20)
        .spawn(move || run_on_this_thread(&cfg))
        .expect("sweep thread spawns")
        .join()
        .expect("sweep thread completes")
}

fn run_on_this_thread(cfg: &SweepConfig) -> std::io::Result<SweepOutcome> {
    let mut outcome = SweepOutcome::default();
    for seed in 0..cfg.seeds {
        for &preset in &cfg.presets {
            let net = SynthNetwork::generate(&preset.config(cfg.nodes, seed));
            let diff = DiffConfig { seed: cfg.diff.seed ^ seed, ..cfg.diff.clone() };
            check_graph(cfg, &diff, preset.as_str(), seed, &net.graph, &mut outcome)?;
        }
    }
    if cfg.adversarial {
        for (shape, g) in adversarial::adversarial_graphs(cfg.nodes.min(96), cfg.diff.seed) {
            check_graph(cfg, &cfg.diff, &shape, cfg.diff.seed, &g, &mut outcome)?;
        }
    }
    Ok(outcome)
}

fn check_graph(
    cfg: &SweepConfig,
    diff: &DiffConfig,
    preset: &str,
    seed: u64,
    g: &CsrGraph,
    outcome: &mut SweepOutcome,
) -> std::io::Result<()> {
    outcome.graphs += 1;
    let edges: Vec<(NodeId, NodeId)> = g.edges().collect();

    outcome.checks += 1;
    let violations = invariants::check_graph(g, diff.seed);
    if let Some(first) = violations.first() {
        let detail = first.clone();
        let (repro, path) = shrink_and_report(
            &cfg.out_dir,
            preset,
            seed,
            "invariants",
            g.node_count(),
            &edges,
            |g| {
                invariants::check_graph(g, diff.seed).into_iter().next().map(|v| Mismatch {
                    kernel: "invariants",
                    detail: v,
                    expected: serde_json::Value::Null,
                    actual: serde_json::Value::Null,
                })
            },
        )?;
        outcome
            .failures
            .push(format!("[{preset} seed {seed}] invariants: {detail} -> {:?}", repro.detail));
        outcome.reproducers.push(path);
    }

    outcome.checks += differential::ALL_KERNELS.len() as u64;
    for m in differential::run_all(g, diff) {
        let kernel = differential::ALL_KERNELS
            .iter()
            .copied()
            .find(|k| k.as_str() == m.kernel)
            .expect("run_all yields known kernels");
        let (repro, path) = shrink_and_report(
            &cfg.out_dir,
            preset,
            seed,
            m.kernel,
            g.node_count(),
            &edges,
            |g| differential::check_kernel(g, kernel, diff),
        )?;
        outcome.failures.push(format!(
            "[{preset} seed {seed}] {}: {} -> {}",
            m.kernel, m.detail, repro.detail
        ));
        outcome.reproducers.push(path);
    }
    Ok(())
}

/// Shrinks a failing graph under `check` and writes the reproducer JSON.
/// Public so custom kernels (the mutation smoke test) can reuse the exact
/// shrink-and-report path of the sweep.
pub fn shrink_and_report(
    out_dir: &Path,
    preset: &str,
    seed: u64,
    kernel: &str,
    nodes: usize,
    edges: &[(NodeId, NodeId)],
    check: impl Fn(&CsrGraph) -> Option<Mismatch>,
) -> std::io::Result<(Reproducer, PathBuf)> {
    let shrunk = shrink::shrink(nodes, edges, |n, e| check(&shrink::build(n, e)).is_some());
    let minimised = shrink::build(shrunk.nodes, &shrunk.edges);
    let last = check(&minimised).expect("shrink preserves the failure");
    let repro = Reproducer {
        schema: REPRO_SCHEMA.to_string(),
        preset: preset.to_string(),
        seed,
        kernel: kernel.to_string(),
        detail: last.detail,
        nodes: shrunk.nodes,
        edges: shrunk.edges,
        expected: last.expected,
        actual: last.actual,
        shrink_steps: shrunk.steps,
    };
    let path = write_reproducer(out_dir, &repro)?;
    Ok((repro, path))
}

/// Writes one reproducer JSON; the filename encodes kernel, preset and
/// seed so repeated sweeps overwrite rather than accumulate.
pub fn write_reproducer(dir: &Path, repro: &Reproducer) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let name = format!(
        "mismatch-{}-{}-{}.json",
        repro.kernel,
        repro.preset.replace([' ', '/'], "-"),
        repro.seed
    );
    let path = dir.join(name);
    let json = serde_json::to_string_pretty(repro).expect("reproducer serialises");
    std::fs::write(&path, json)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("gplus-oracle-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn tiny_sweep_is_clean_across_presets_and_adversarial_shapes() {
        let mut cfg = SweepConfig::new(2, 250);
        cfg.out_dir = temp_dir("sweep");
        cfg.diff = DiffConfig::quick(0);
        let outcome = run(&cfg).expect("sweep runs");
        // 2 seeds x 3 presets + adversarial shapes
        assert!(outcome.graphs > 6, "adversarial shapes must be included");
        assert!(outcome.checks > outcome.graphs as u64);
        assert!(
            outcome.failures.is_empty(),
            "kernels must agree with the oracle: {:?}",
            outcome.failures
        );
        assert!(outcome.reproducers.is_empty());
    }

    #[test]
    fn a_planted_failure_shrinks_and_writes_a_reproducer() {
        let dir = temp_dir("repro");
        let edges: Vec<(NodeId, NodeId)> =
            (0..20).map(|i| (i as NodeId, (i + 1) as NodeId)).collect();
        // planted "bug": flag any graph that still contains a 2-hop path
        let (repro, path) =
            shrink_and_report(&dir, "planted", 3, "bfs-classic", 21, &edges, |g| {
                g.nodes().any(|s| gplus_graph::bfs::levels(g, s).eccentricity >= 2).then(|| {
                    Mismatch {
                        kernel: "bfs-classic",
                        detail: "planted".into(),
                        expected: serde_json::json!(2),
                        actual: serde_json::json!(1),
                    }
                })
            })
            .expect("reproducer written");
        assert_eq!(repro.schema, REPRO_SCHEMA);
        assert_eq!(repro.nodes, 3, "minimal 2-hop witness is a 3-node path");
        assert_eq!(repro.edges.len(), 2);
        assert!(repro.shrink_steps > 0);
        let text = std::fs::read_to_string(&path).expect("file exists");
        let back: Reproducer = serde_json::from_str(&text).expect("round-trips");
        assert_eq!(back.edges, repro.edges);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn preset_names_round_trip() {
        for p in Preset::all() {
            assert_eq!(Preset::parse(p.as_str()), Some(p));
        }
        assert_eq!(Preset::parse("nope"), None);
    }
}
