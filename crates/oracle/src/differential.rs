//! Optimized-vs-oracle differential checks.
//!
//! Every optimized kernel is run against its naive [`crate::reference`]
//! twin on the same input; the first disagreement per kernel becomes a
//! [`Mismatch`] carrying JSON-serialisable expected/actual values, ready
//! to be embedded in a reproducer file. Checks are deterministic: all
//! sampling derives from the caller's seed and the graph's node count.
//!
//! The obs counters `oracle.checked` and `oracle.mismatch` (see
//! `gplus_obs::names`) count kernel checks and disagreements.

use crate::reference::{self, EdgeSet};
use gplus_graph::bfs::{self, BfsLevels};
use gplus_graph::pagerank::{pagerank, PageRankParams};
use gplus_graph::relabel::Relabeling;
use gplus_graph::{
    clustering, mbfs, motifs, paths, reciprocity, scc, wcc, CompressedCsr, CsrGraph, NodeId,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde_json::json;

/// The optimized kernels under differential test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Classic queue BFS (`bfs::levels`, `bfs::distances`).
    BfsClassic,
    /// Direction-optimizing BFS across thresholds.
    BfsHybrid,
    /// 64-lane batched multi-source BFS.
    BfsBatched,
    /// Sampled shortest-path-length estimator.
    PathSampling,
    /// Directed clustering coefficient.
    Clustering,
    /// Pairwise and global reciprocity.
    Reciprocity,
    /// Directed-triangle motif census vs the isomorphism-classifying
    /// reference (full compare on small graphs, apex/participation spot
    /// checks on large ones).
    Motifs,
    /// Kosaraju + iterative Tarjan vs the recursive reference Tarjan.
    Scc,
    /// Union–find and flood-fill WCC vs the reference flood fill.
    Wcc,
    /// Hub-first relabeling: traversal invariance under the permutation.
    Relabel,
    /// Delta-gap varint compressed CSR: decode fidelity and kernel
    /// byte-identity with the flat representation.
    Compressed,
    /// Chunk-parallel kernels (PageRank gather, compressed encode) must
    /// produce byte-identical output at 1, 2 and 8 threads and across
    /// repeated runs at the same thread count.
    ParallelDeterminism,
}

/// Every kernel, in check order.
pub const ALL_KERNELS: &[Kernel] = &[
    Kernel::BfsClassic,
    Kernel::BfsHybrid,
    Kernel::BfsBatched,
    Kernel::PathSampling,
    Kernel::Clustering,
    Kernel::Reciprocity,
    Kernel::Motifs,
    Kernel::Scc,
    Kernel::Wcc,
    Kernel::Relabel,
    Kernel::Compressed,
    Kernel::ParallelDeterminism,
];

impl Kernel {
    /// Stable name used in counters, reproducer files and CLI output.
    pub fn as_str(self) -> &'static str {
        match self {
            Kernel::BfsClassic => "bfs-classic",
            Kernel::BfsHybrid => "bfs-hybrid",
            Kernel::BfsBatched => "bfs-batched",
            Kernel::PathSampling => "path-sampling",
            Kernel::Clustering => "clustering",
            Kernel::Reciprocity => "reciprocity",
            Kernel::Motifs => "motifs",
            Kernel::Scc => "scc",
            Kernel::Wcc => "wcc",
            Kernel::Relabel => "relabel",
            Kernel::Compressed => "compressed-csr",
            Kernel::ParallelDeterminism => "parallel-determinism",
        }
    }
}

/// One optimized-vs-oracle disagreement.
#[derive(Debug, Clone)]
pub struct Mismatch {
    /// Which kernel disagreed.
    pub kernel: &'static str,
    /// Where and how (source node, threshold, …).
    pub detail: String,
    /// What the reference computed.
    pub expected: serde_json::Value,
    /// What the optimized kernel computed.
    pub actual: serde_json::Value,
}

/// Budgets for one differential pass. All sampling is a pure function of
/// `seed` and the graph size.
#[derive(Debug, Clone)]
pub struct DiffConfig {
    /// Seed for all node/source sampling.
    pub seed: u64,
    /// BFS sources per levels/distances check.
    pub bfs_sources: usize,
    /// Nodes sampled for the quadratic clustering / reciprocity oracles.
    pub node_sample: usize,
    /// Sources for the path-length estimator check.
    pub path_sources: usize,
    /// Hybrid thresholds to sweep (0.0 forces bottom-up, 1.0 top-down).
    pub thresholds: Vec<f64>,
}

impl DiffConfig {
    /// Full budgets for the release-mode seed sweep.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            bfs_sources: 16,
            node_sample: 300,
            path_sources: 16,
            thresholds: vec![0.0, bfs::DEFAULT_HYBRID_THRESHOLD, 1.0],
        }
    }

    /// Reduced budgets for debug-mode tests and the pipeline `--verify`
    /// hook.
    pub fn quick(seed: u64) -> Self {
        Self {
            seed,
            bfs_sources: 6,
            node_sample: 80,
            path_sources: 6,
            thresholds: vec![bfs::DEFAULT_HYBRID_THRESHOLD],
        }
    }
}

/// `k` deterministic sample nodes of `g` (without replacement, ascending
/// when `k >= n`). Shared by the differential and invariant checks.
pub fn sample_nodes(g: &CsrGraph, seed: u64, k: usize) -> Vec<NodeId> {
    let n = g.node_count();
    if n == 0 {
        return Vec::new();
    }
    if k >= n {
        return g.nodes().collect();
    }
    let mut rng = StdRng::seed_from_u64(seed ^ (n as u64).rotate_left(17));
    let mut picked = std::collections::BTreeSet::new();
    while picked.len() < k {
        picked.insert(rng.random_range(0..n) as NodeId);
    }
    picked.into_iter().collect()
}

/// Batched-BFS source list: always longer than one 64-lane word (so chunk
/// seams are exercised) and containing duplicates, built by cycling the
/// sampled sources.
fn batched_sources(g: &CsrGraph, cfg: &DiffConfig) -> Vec<NodeId> {
    let base = sample_nodes(g, cfg.seed ^ 0xba7c, cfg.bfs_sources.max(4));
    if base.is_empty() {
        return Vec::new();
    }
    let want = (mbfs::BATCH_WIDTH + base.len().max(8)).max(65);
    (0..want).map(|i| base[i % base.len()]).collect()
}

/// Runs every kernel check on `g`; returns at most one [`Mismatch`] per
/// kernel. Bumps `oracle.checked` per kernel and `oracle.mismatch` per
/// disagreement.
pub fn run_all(g: &CsrGraph, cfg: &DiffConfig) -> Vec<Mismatch> {
    let obs = gplus_obs::global();
    let mut mismatches = Vec::new();
    for &kernel in ALL_KERNELS {
        obs.counter(gplus_obs::names::ORACLE_CHECKED).inc();
        if let Some(m) = check_kernel(g, kernel, cfg) {
            obs.counter(gplus_obs::names::ORACLE_MISMATCH).inc();
            mismatches.push(m);
        }
    }
    mismatches
}

/// Runs one kernel's differential check, returning its first disagreement.
pub fn check_kernel(g: &CsrGraph, kernel: Kernel, cfg: &DiffConfig) -> Option<Mismatch> {
    match kernel {
        Kernel::BfsClassic => check_levels_kernel(g, cfg, "bfs-classic", |g, s| {
            (bfs::levels(g, s), Some(bfs::distances(g, s)))
        }),
        Kernel::BfsHybrid => cfg.thresholds.iter().find_map(|&t| {
            check_levels_kernel(g, cfg, Kernel::BfsHybrid.as_str(), move |g, s| {
                (bfs::hybrid_levels(g, s, t), Some(bfs::hybrid_distances(g, s, t)))
            })
            .map(|mut m| {
                m.detail = format!("{} (threshold {t})", m.detail);
                m
            })
        }),
        Kernel::BfsBatched => check_batched(g, cfg),
        Kernel::PathSampling => check_paths(g, cfg),
        Kernel::Clustering => check_clustering(g, cfg),
        Kernel::Reciprocity => check_reciprocity(g, cfg),
        Kernel::Motifs => check_motifs_kernel(g, cfg, Kernel::Motifs.as_str(), motifs::census),
        Kernel::Scc => check_scc(g),
        Kernel::Wcc => check_wcc(g),
        Kernel::Relabel => check_relabel(g, cfg),
        Kernel::Compressed => check_compressed(g, cfg),
        Kernel::ParallelDeterminism => check_parallel_determinism(g),
    }
}

/// Differential check of any levels-producing BFS kernel against the
/// reference, over the config's sampled sources. The kernel returns its
/// [`BfsLevels`] plus optionally a distance vector (also verified). Public
/// so the mutation smoke test can feed a deliberately wrong kernel in.
pub fn check_levels_kernel(
    g: &CsrGraph,
    cfg: &DiffConfig,
    name: &'static str,
    kernel: impl Fn(&CsrGraph, NodeId) -> (BfsLevels, Option<Vec<u32>>),
) -> Option<Mismatch> {
    for s in sample_nodes(g, cfg.seed ^ 0xbf5, cfg.bfs_sources) {
        let want_levels = reference::bfs_levels(g, s);
        let (got_levels, got_dist) = kernel(g, s);
        if got_levels != want_levels {
            return Some(Mismatch {
                kernel: name,
                detail: format!("levels from source {s}"),
                expected: json!({
                    "counts": want_levels.counts,
                    "eccentricity": want_levels.eccentricity,
                    "reached": want_levels.reached,
                }),
                actual: json!({
                    "counts": got_levels.counts,
                    "eccentricity": got_levels.eccentricity,
                    "reached": got_levels.reached,
                }),
            });
        }
        if let Some(got) = got_dist {
            let want = reference::bfs_distances(g, s);
            if got != want {
                let at = got.iter().zip(&want).position(|(a, b)| a != b).unwrap_or(0);
                return Some(Mismatch {
                    kernel: name,
                    detail: format!("distances from source {s}, first divergence at node {at}"),
                    expected: json!(want),
                    actual: json!(got),
                });
            }
        }
    }
    None
}

fn check_batched(g: &CsrGraph, cfg: &DiffConfig) -> Option<Mismatch> {
    let sources = batched_sources(g, cfg);
    if sources.is_empty() {
        return None;
    }
    for &t in &cfg.thresholds {
        let lanes = mbfs::multi_source_levels(g, &sources, t);
        for (lane, (&s, got)) in sources.iter().zip(&lanes).enumerate() {
            let want = reference::bfs_levels(g, s);
            if *got != want {
                return Some(Mismatch {
                    kernel: Kernel::BfsBatched.as_str(),
                    detail: format!(
                        "lane {lane} (source {s}) of {} at threshold {t}",
                        sources.len()
                    ),
                    expected: json!({ "counts": want.counts, "reached": want.reached }),
                    actual: json!({ "counts": got.counts, "reached": got.reached }),
                });
            }
        }
    }
    None
}

fn check_paths(g: &CsrGraph, cfg: &DiffConfig) -> Option<Mismatch> {
    let sources: Vec<usize> = sample_nodes(g, cfg.seed ^ 0x9a7, cfg.path_sources)
        .iter()
        .map(|&s| s as usize)
        .collect();
    let got = paths::path_lengths_from_sources(g, &sources);
    let want = reference::path_length_distribution(g, &sources);
    (got != want).then(|| Mismatch {
        kernel: Kernel::PathSampling.as_str(),
        detail: format!("distribution over {} sources", sources.len()),
        expected: json!({
            "counts": want.counts, "sources": want.sources, "max_distance": want.max_distance,
        }),
        actual: json!({
            "counts": got.counts, "sources": got.sources, "max_distance": got.max_distance,
        }),
    })
}

fn check_clustering(g: &CsrGraph, cfg: &DiffConfig) -> Option<Mismatch> {
    let es = EdgeSet::from_graph(g);
    for u in sample_nodes(g, cfg.seed ^ 0xcc, cfg.node_sample) {
        let want = reference::clustering_coefficient(&es, g, u);
        let got = clustering::clustering_coefficient(g, u);
        let agree = match (got, want) {
            (Some(a), Some(b)) => (a - b).abs() < 1e-12,
            (None, None) => true,
            _ => false,
        };
        if !agree {
            return Some(Mismatch {
                kernel: Kernel::Clustering.as_str(),
                detail: format!("clustering coefficient of node {u}"),
                expected: json!(want),
                actual: json!(got),
            });
        }
    }
    None
}

fn check_reciprocity(g: &CsrGraph, cfg: &DiffConfig) -> Option<Mismatch> {
    let es = EdgeSet::from_graph(g);
    for u in sample_nodes(g, cfg.seed ^ 0x44, cfg.node_sample) {
        let want = reference::relation_reciprocity(&es, g, u);
        let got = reciprocity::relation_reciprocity(g, u);
        let agree = match (got, want) {
            (Some(a), Some(b)) => (a - b).abs() < 1e-12,
            (None, None) => true,
            _ => false,
        };
        if !agree {
            return Some(Mismatch {
                kernel: Kernel::Reciprocity.as_str(),
                detail: format!("relation reciprocity of node {u}"),
                expected: json!(want),
                actual: json!(got),
            });
        }
    }
    let want = reference::global_reciprocity(&es, g);
    let got = reciprocity::global_reciprocity(g);
    if (got - want).abs() >= 1e-12 {
        return Some(Mismatch {
            kernel: Kernel::Reciprocity.as_str(),
            detail: "global reciprocity".to_string(),
            expected: json!(want),
            actual: json!(got),
        });
    }
    let want_pairs = reference::reciprocal_pair_count(&es, g);
    let got_pairs = reciprocity::reciprocal_pair_count(g);
    (got_pairs != want_pairs).then(|| Mismatch {
        kernel: Kernel::Reciprocity.as_str(),
        detail: "reciprocal pair count".to_string(),
        expected: json!(want_pairs),
        actual: json!(got_pairs),
    })
}

/// Differential check of a motif-census kernel against the naive
/// isomorphism-classifying reference. Graphs up to 8× the node-sample
/// budget get the full `O(Σ deg²)` compare — per-class totals *and* the
/// whole per-node participation vector; larger graphs get spot checks:
/// the kernel's per-apex class counts and the census's per-node counts
/// over the sampled nodes, plus the 3-corners-per-triangle conservation
/// law on the full result. Public so the mutation smoke test can feed a
/// deliberately wrong census in.
pub fn check_motifs_kernel(
    g: &CsrGraph,
    cfg: &DiffConfig,
    name: &'static str,
    kernel: impl Fn(&CsrGraph) -> motifs::MotifCensus,
) -> Option<Mismatch> {
    let es = EdgeSet::from_graph(g);
    let got = kernel(g);
    if got.per_node.len() != g.node_count() {
        return Some(Mismatch {
            kernel: name,
            detail: "per-node participation vector length".to_string(),
            expected: json!(g.node_count()),
            actual: json!(got.per_node.len()),
        });
    }
    // every triangle has exactly three corners, whatever its class
    let corners: u64 = got.per_node.iter().sum();
    if corners != 3 * got.triangle_total() {
        return Some(Mismatch {
            kernel: name,
            detail: "participation sum vs 3 x triangle total".to_string(),
            expected: json!(3 * got.triangle_total()),
            actual: json!(corners),
        });
    }
    if g.node_count() <= cfg.node_sample.saturating_mul(8) {
        let want = reference::motif_census(&es, g);
        if got.totals != want.totals {
            return Some(Mismatch {
                kernel: name,
                detail: "per-class triangle totals".to_string(),
                expected: json!(want.totals.to_vec()),
                actual: json!(got.totals.to_vec()),
            });
        }
        if got.per_node != want.per_node {
            let at =
                got.per_node.iter().zip(&want.per_node).position(|(a, b)| a != b).unwrap_or(0);
            return Some(Mismatch {
                kernel: name,
                detail: format!("triangle participation, first divergence at node {at}"),
                expected: json!(want.per_node[at]),
                actual: json!(got.per_node[at]),
            });
        }
        return None;
    }
    for c in sample_nodes(g, cfg.seed ^ 0x7a1, cfg.node_sample) {
        let want_apex = reference::apex_motif_census(&es, g, c);
        let got_apex = motifs::apex_census(g, c);
        if got_apex != want_apex {
            return Some(Mismatch {
                kernel: name,
                detail: format!("per-class counts at apex {c}"),
                expected: json!(want_apex.to_vec()),
                actual: json!(got_apex.to_vec()),
            });
        }
        let want_part = reference::node_triangle_participation(&es, g, c);
        if got.per_node[c as usize] != want_part {
            return Some(Mismatch {
                kernel: name,
                detail: format!("triangle participation of node {c}"),
                expected: json!(want_part),
                actual: json!(got.per_node[c as usize]),
            });
        }
    }
    None
}

fn check_scc(g: &CsrGraph) -> Option<Mismatch> {
    let want = reference::tarjan_scc(g);
    for (name, got) in [("kosaraju", scc::kosaraju(g)), ("tarjan", scc::tarjan(g))] {
        if !scc::same_partition(&want, &got) {
            return Some(Mismatch {
                kernel: Kernel::Scc.as_str(),
                detail: format!("{name} partition differs from reference Tarjan"),
                expected: json!({ "count": want.count, "component": want.component }),
                actual: json!({ "count": got.count, "component": got.component }),
            });
        }
    }
    None
}

fn check_wcc(g: &CsrGraph) -> Option<Mismatch> {
    let want = reference::weakly_connected_components(g);
    for (name, got) in [
        ("union-find", wcc::weakly_connected_components(g)),
        ("flood-fill", wcc::weakly_connected_components_bfs(g, bfs::DEFAULT_HYBRID_THRESHOLD)),
    ] {
        // labelling equality, not just partition equality: all three
        // implementations densify ids by ascending first occurrence
        if got != want {
            return Some(Mismatch {
                kernel: Kernel::Wcc.as_str(),
                detail: format!("{name} labelling differs from reference flood fill"),
                expected: json!({ "count": want.count, "component": want.component }),
                actual: json!({ "count": got.count, "component": got.component }),
            });
        }
    }
    None
}

fn check_relabel(g: &CsrGraph, cfg: &DiffConfig) -> Option<Mismatch> {
    let r = Relabeling::degree_descending(g);
    let h = r.apply(g);
    let mut mapped: Vec<(NodeId, NodeId)> =
        g.edges().map(|(u, v)| (r.to_new(u), r.to_new(v))).collect();
    mapped.sort_unstable();
    let got = h.edge_list();
    if got != mapped {
        return Some(Mismatch {
            kernel: Kernel::Relabel.as_str(),
            detail: "permuted graph's edge multiset".to_string(),
            expected: json!(mapped),
            actual: json!(got),
        });
    }
    // traversal invariance: BFS from a relabeled source sees the same
    // level profile as from the public-id source
    for s in sample_nodes(g, cfg.seed ^ 0x5e1, cfg.bfs_sources) {
        let want = reference::bfs_levels(g, s);
        let got = bfs::levels(&h, r.to_new(s));
        if got != want {
            return Some(Mismatch {
                kernel: Kernel::Relabel.as_str(),
                detail: format!("levels from source {s} (relabeled {})", r.to_new(s)),
                expected: json!(want.counts),
                actual: json!(got.counts),
            });
        }
    }
    None
}

fn check_compressed(g: &CsrGraph, cfg: &DiffConfig) -> Option<Mismatch> {
    let c = CompressedCsr::from_csr(g);
    // decode fidelity: the varint gap streams must reproduce the flat CSR
    // exactly, adjacency list by adjacency list
    let back = c.to_csr();
    if &back != g {
        let at = g
            .nodes()
            .find(|&u| {
                back.out_neighbors(u) != g.out_neighbors(u)
                    || back.in_neighbors(u) != g.in_neighbors(u)
            })
            .unwrap_or(0);
        return Some(Mismatch {
            kernel: Kernel::Compressed.as_str(),
            detail: format!("decode round trip, first divergent node {at}"),
            expected: json!({ "out": g.out_neighbors(at), "in": g.in_neighbors(at) }),
            actual: json!({ "out": back.out_neighbors(at), "in": back.in_neighbors(at) }),
        });
    }
    // traversal byte-identity: hybrid BFS over the compressed graph must
    // produce the same distance vector as over the flat CSR at every
    // direction-switch threshold (0.0 forces bottom-up in-decode, 1.0
    // top-down out-decode)
    for &t in &cfg.thresholds {
        for s in sample_nodes(g, cfg.seed ^ 0xc0de, cfg.bfs_sources) {
            let want = bfs::hybrid_distances(g, s, t);
            let got = bfs::hybrid_distances(&c, s, t);
            if got != want {
                let at = got.iter().zip(&want).position(|(a, b)| a != b).unwrap_or(0);
                return Some(Mismatch {
                    kernel: Kernel::Compressed.as_str(),
                    detail: format!(
                        "hybrid distances from source {s} at threshold {t}, first divergence \
                         at node {at}"
                    ),
                    expected: json!(want),
                    actual: json!(got),
                });
            }
        }
    }
    // floating-point kernels: identical iteration order over both
    // representations means the results must match to the bit, not just
    // within a tolerance
    if g.node_count() > 0 {
        let params = PageRankParams { max_iterations: 30, ..PageRankParams::default() };
        let flat = pagerank(g, &params);
        let packed = pagerank(&c, &params);
        if let Some(at) = (0..flat.scores.len())
            .find(|&i| flat.scores[i].to_bits() != packed.scores[i].to_bits())
        {
            return Some(Mismatch {
                kernel: Kernel::Compressed.as_str(),
                detail: format!("pagerank score of node {at} differs in bits"),
                expected: json!(flat.scores[at]),
                actual: json!(packed.scores[at]),
            });
        }
    }
    for u in sample_nodes(g, cfg.seed ^ 0xcc0, cfg.node_sample) {
        let want = clustering::clustering_coefficient(g, u);
        let got = clustering::clustering_coefficient(&c, u);
        if want.map(f64::to_bits) != got.map(f64::to_bits) {
            return Some(Mismatch {
                kernel: Kernel::Compressed.as_str(),
                detail: format!("clustering coefficient of node {u} differs in bits"),
                expected: json!(want),
                actual: json!(got),
            });
        }
    }
    None
}

/// The parallel-vs-sequential equality kernel: runs the chunk-parallel
/// PageRank gather and compressed-CSR encode in dedicated 1-, 2- and
/// 8-thread rayon pools and demands byte-identical output, then re-runs
/// at a fixed thread count to catch run-to-run nondeterminism (e.g. a
/// racy reduction that happens to be schedule-stable on one pool size).
fn check_parallel_determinism(g: &CsrGraph) -> Option<Mismatch> {
    if g.node_count() == 0 {
        return None;
    }
    let pool = |threads: usize| {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("building a local rayon pool cannot fail")
    };
    let params = PageRankParams { max_iterations: 25, ..PageRankParams::default() };

    let base_pr = pool(1).install(|| pagerank(g, &params));
    let base_digest = pool(1).install(|| CompressedCsr::from_csr(g)).content_digest();

    for threads in [1usize, 2, 8] {
        let p = pool(threads);
        let pr = p.install(|| pagerank(g, &params));
        if pr.iterations != base_pr.iterations {
            return Some(Mismatch {
                kernel: Kernel::ParallelDeterminism.as_str(),
                detail: format!("pagerank iteration count at {threads} threads"),
                expected: json!(base_pr.iterations),
                actual: json!(pr.iterations),
            });
        }
        if let Some(at) = (0..pr.scores.len())
            .find(|&i| pr.scores[i].to_bits() != base_pr.scores[i].to_bits())
        {
            return Some(Mismatch {
                kernel: Kernel::ParallelDeterminism.as_str(),
                detail: format!(
                    "pagerank score of node {at} differs in bits between 1 and {threads} \
                     threads"
                ),
                expected: json!(base_pr.scores[at]),
                actual: json!(pr.scores[at]),
            });
        }
        let digest = p.install(|| CompressedCsr::from_csr(g)).content_digest();
        if digest != base_digest {
            return Some(Mismatch {
                kernel: Kernel::ParallelDeterminism.as_str(),
                detail: format!(
                    "compressed stream bytes differ between 1 and {threads} threads"
                ),
                expected: json!(base_digest),
                actual: json!(digest),
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use gplus_graph::builder::from_edges;
    use gplus_synth::{SynthConfig, SynthNetwork};

    #[test]
    fn all_kernels_pass_on_handcrafted_graphs() {
        for (n, edges) in [
            (0usize, vec![]),
            (1, vec![(0, 0)]),
            (7, vec![(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 3), (5, 5), (0, 6)]),
        ] {
            let g = from_edges(n, edges.clone());
            let m = run_all(&g, &DiffConfig::quick(11));
            assert!(m.is_empty(), "({n}, {edges:?}): {m:?}");
        }
    }

    #[test]
    fn all_kernels_pass_on_a_synthetic_network() {
        let net = SynthNetwork::generate(&SynthConfig::google_plus_2011(1_200, 5));
        let m = run_all(&net.graph, &DiffConfig::quick(5));
        assert!(m.is_empty(), "{m:?}");
    }

    #[test]
    fn sampling_is_deterministic_and_bounded() {
        let g = from_edges(50, (0..49).map(|i| (i, i + 1)));
        let a = sample_nodes(&g, 9, 10);
        let b = sample_nodes(&g, 9, 10);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        assert!(a.windows(2).all(|w| w[0] < w[1]), "without replacement, ascending");
        assert_eq!(sample_nodes(&g, 9, 100).len(), 50, "clamped to n");
    }

    #[test]
    fn batched_sources_cross_the_lane_boundary_with_duplicates() {
        let g = from_edges(10, [(0, 1), (1, 2)]);
        let s = batched_sources(&g, &DiffConfig::quick(3));
        assert!(s.len() > mbfs::BATCH_WIDTH, "must spill past one 64-lane word");
        let distinct: std::collections::HashSet<_> = s.iter().collect();
        assert!(distinct.len() < s.len(), "must contain duplicates");
    }

    #[test]
    fn compressed_kernels_are_byte_identical_on_a_synthetic_network() {
        let net = SynthNetwork::generate(&SynthConfig::google_plus_2011(900, 9));
        // full budgets: all three thresholds, so both decode directions run
        let m = check_kernel(&net.graph, Kernel::Compressed, &DiffConfig::new(9));
        assert!(m.is_none(), "{m:?}");
    }

    #[test]
    fn a_wrong_kernel_is_flagged() {
        // feed a kernel that reports one node too many at the last level
        let g = from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let m = check_levels_kernel(&g, &DiffConfig::quick(2), "broken", |g, s| {
            let mut l = bfs::levels(g, s);
            *l.counts.last_mut().unwrap() += 1;
            l.reached += 1;
            (l, None)
        });
        let m = m.expect("the broken kernel must be flagged");
        assert_eq!(m.kernel, "broken");
        assert!(m.detail.contains("levels from source"));
    }

    #[test]
    fn a_wrong_motif_census_is_flagged() {
        // one 120U triangle; a census that reports it as 120D must trip the
        // full small-graph compare
        let g = from_edges(3, [(0, 1), (1, 0), (0, 2), (1, 2)]);
        let m = check_motifs_kernel(&g, &DiffConfig::quick(4), "broken-motifs", |g| {
            let mut c = motifs::census(g);
            c.totals.swap(2, 3);
            c
        });
        let m = m.expect("the swapped census must be flagged");
        assert_eq!(m.kernel, "broken-motifs");
        assert!(m.detail.contains("per-class triangle totals"));
    }

    #[test]
    fn motif_kernel_passes_on_a_synthetic_network_with_full_budgets() {
        let net = SynthNetwork::generate(&SynthConfig::google_plus_2011(1_000, 7));
        let m = check_kernel(&net.graph, Kernel::Motifs, &DiffConfig::new(7));
        assert!(m.is_none(), "{m:?}");
    }
}
