//! Greedy counterexample shrinking.
//!
//! When a differential or invariant check fails on a fuzzed graph, the
//! full input is far too big to debug by hand. [`shrink`] minimises it
//! with the classic delta-debugging recipe: repeatedly delete chunks of
//! edges (halving the chunk size as progress stalls), then delete nodes
//! one at a time (compacting ids), keeping every deletion that preserves
//! the failure. The result is a small graph on which the original check
//! still fails — the payload of the reproducer JSON.
//!
//! Every predicate evaluation bumps the `oracle.shrink_steps` counter.

use gplus_graph::builder::from_edges;
use gplus_graph::{CsrGraph, NodeId};

/// A minimised failing input.
#[derive(Debug, Clone)]
pub struct ShrinkOutcome {
    /// Node count of the minimised graph.
    pub nodes: usize,
    /// Edge list of the minimised graph.
    pub edges: Vec<(NodeId, NodeId)>,
    /// Predicate evaluations spent shrinking.
    pub steps: u64,
}

/// Builds the candidate graph a predicate sees.
pub fn build(nodes: usize, edges: &[(NodeId, NodeId)]) -> CsrGraph {
    from_edges(nodes, edges.iter().copied())
}

/// Minimises `(nodes, edges)` under `still_fails`, which must return true
/// on the input (debug-asserted) and on every kept reduction. Greedy and
/// deterministic: the same input and predicate always shrink to the same
/// output.
pub fn shrink(
    nodes: usize,
    edges: &[(NodeId, NodeId)],
    mut still_fails: impl FnMut(usize, &[(NodeId, NodeId)]) -> bool,
) -> ShrinkOutcome {
    let obs = gplus_obs::global();
    let mut steps = 0u64;
    let mut check = |n: usize, e: &[(NodeId, NodeId)]| {
        steps += 1;
        obs.counter(gplus_obs::names::ORACLE_SHRINK_STEPS).inc();
        still_fails(n, e)
    };
    assert!(check(nodes, edges), "shrink requires a failing input");

    // Phase 1: chunked edge deletion, chunk size halving from |E|/2 to 1.
    let mut edges: Vec<(NodeId, NodeId)> = edges.to_vec();
    let mut chunk = (edges.len() / 2).max(1);
    while !edges.is_empty() {
        let mut progressed = false;
        let mut start = 0;
        while start < edges.len() {
            let end = (start + chunk).min(edges.len());
            let mut candidate = edges.clone();
            candidate.drain(start..end);
            if check(nodes, &candidate) {
                edges = candidate;
                progressed = true;
                // re-test the same offset: it now holds different edges
            } else {
                start = end;
            }
        }
        if chunk == 1 && !progressed {
            break;
        }
        if !progressed {
            chunk = (chunk / 2).max(1);
        }
    }

    // Phase 2: node deletion with id compaction, highest id first so
    // remaining ids shift as little as possible per step.
    let mut n = nodes;
    let mut v = n;
    while v > 0 {
        v -= 1;
        let removed = v as NodeId;
        let candidate: Vec<(NodeId, NodeId)> = edges
            .iter()
            .filter(|&&(a, b)| a != removed && b != removed)
            .map(|&(a, b)| {
                (if a > removed { a - 1 } else { a }, if b > removed { b - 1 } else { b })
            })
            .collect();
        if check(n - 1, &candidate) {
            edges = candidate;
            n -= 1;
        }
    }

    ShrinkOutcome { nodes: n, edges, steps }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinks_a_self_loop_witness_to_one_node() {
        // failure: "the graph contains a self-loop"
        let edges: Vec<(NodeId, NodeId)> =
            vec![(0, 1), (1, 2), (3, 3), (2, 4), (4, 0), (1, 4), (2, 0)];
        let out = shrink(5, &edges, |_, e| e.iter().any(|&(a, b)| a == b));
        assert_eq!(out.nodes, 1);
        assert_eq!(out.edges, vec![(0, 0)]);
        assert!(out.steps > 0);
    }

    #[test]
    fn shrinks_a_path_witness_to_two_edges() {
        // failure: "some node has eccentricity >= 2" — minimal witness is
        // a 3-node path
        let edges: Vec<(NodeId, NodeId)> =
            (0..9).map(|i| (i as NodeId, i as NodeId + 1)).collect();
        let out = shrink(10, &edges, |n, e| {
            let g = build(n, e);
            g.nodes().any(|s| gplus_graph::bfs::levels(&g, s).eccentricity >= 2)
        });
        assert_eq!(out.nodes, 3);
        assert_eq!(out.edges.len(), 2);
    }

    #[test]
    fn shrink_is_deterministic() {
        let edges: Vec<(NodeId, NodeId)> =
            vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (2, 5)];
        let pred = |n: usize, e: &[(NodeId, NodeId)]| {
            let g = build(n, e);
            g.edge_count() >= 2
                && g.nodes().any(|u| g.out_degree(u) >= 1 && g.in_degree(u) >= 1)
        };
        let a = shrink(6, &edges, pred);
        let b = shrink(6, &edges, pred);
        assert_eq!(a.nodes, b.nodes);
        assert_eq!(a.edges, b.edges);
    }
}
