//! # gplus-oracle — the correctness net under the optimized kernels
//!
//! PRs 1–4 made the analysis pipeline parallel, fault-tolerant, observable
//! and fast; this crate keeps it *honest*. Three layers:
//!
//! * [`mod@reference`] — naive, obviously-correct twins of every optimized
//!   graph kernel (plain-queue BFS, brute-force path sampling, `O(deg²)`
//!   clustering, linear-scan reciprocity, a recursive Tarjan as a third
//!   SCC opinion, flood-fill WCC), written for clarity, never for speed.
//! * [`invariants`] — metamorphic graph-theory laws that must hold on any
//!   input regardless of implementation: degree sums equal `|E|`, the
//!   reciprocal-edge set is symmetric, SCC refines WCC, clustering stays
//!   in `[0, 1]`, BFS levels are monotone, the relabel permutation is an
//!   edge-multiset-preserving bijection.
//! * [`differential`] + [`sweep`] + [`mod@shrink`] — a deterministic
//!   seed-sweep fuzzer (`gplus verify-kernels`) generating synthetic
//!   graphs across all three presets plus adversarial shapes, running
//!   optimized-vs-oracle on each, and on mismatch shrinking the failing
//!   graph and writing a self-contained reproducer JSON to
//!   `target/oracle/`.
//!
//! The `oracle-mutation` feature compiles the `mutation` module, a deliberately
//! wrong BFS the smoke test uses to prove the oracle can actually fail.
//!
//! ```
//! use gplus_graph::builder::from_edges;
//! use gplus_oracle::differential::{run_all, DiffConfig};
//!
//! let g = from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
//! assert!(run_all(&g, &DiffConfig::quick(42)).is_empty());
//! assert!(gplus_oracle::invariants::check_graph(&g, 42).is_empty());
//! ```

pub mod differential;
pub mod invariants;
#[cfg(feature = "oracle-mutation")]
pub mod mutation;
pub mod reference;
pub mod shrink;
pub mod sweep;

pub use differential::{check_kernel, run_all, DiffConfig, Kernel, Mismatch};
pub use shrink::{shrink, ShrinkOutcome};
pub use sweep::{Preset, Reproducer, SweepConfig, SweepOutcome};
