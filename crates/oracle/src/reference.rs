//! Naive, obviously-correct reference implementations of every optimized
//! graph kernel.
//!
//! Everything here is written for *clarity*, not speed: plain queues, hash
//! sets, nested loops, no scratch reuse, no direction switching, no bit
//! packing and no metrics. The point is that each function is short enough
//! to audit by eye, so when an optimized kernel and its reference disagree
//! the reference wins and the kernel is the suspect. Asymptotics are
//! documented per function; the differential runner keeps inputs small
//! enough that quadratic passes stay affordable.

use gplus_graph::bfs::{BfsLevels, UNREACHABLE};
use gplus_graph::motifs::{MotifCensus, MOTIF_CLASSES};
use gplus_graph::paths::PathLengthDistribution;
use gplus_graph::scc::SccResult;
use gplus_graph::wcc::WccResult;
use gplus_graph::{CsrGraph, NodeId};
use std::collections::{HashSet, VecDeque};

/// The full directed edge set as a hash set — `O(1)` membership with no
/// reliance on the CSR's sorted-list invariant (which is itself under
/// test).
pub struct EdgeSet {
    edges: HashSet<(NodeId, NodeId)>,
}

impl EdgeSet {
    /// Collects every directed edge of `g`.
    pub fn from_graph(g: &CsrGraph) -> Self {
        Self { edges: g.edges().collect() }
    }

    /// Whether the directed edge `u -> v` exists.
    pub fn contains(&self, u: NodeId, v: NodeId) -> bool {
        self.edges.contains(&(u, v))
    }

    /// Number of distinct directed edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }
}

/// Textbook single-source BFS distances: one queue, one visited pass,
/// `O(n + m)`.
pub fn bfs_distances(g: &CsrGraph, source: NodeId) -> Vec<u32> {
    assert!((source as usize) < g.node_count(), "source out of range");
    let mut dist = vec![UNREACHABLE; g.node_count()];
    let mut queue = VecDeque::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        for &v in g.out_neighbors(u) {
            if dist[v as usize] == UNREACHABLE {
                dist[v as usize] = dist[u as usize] + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Per-level counts derived straight from [`bfs_distances`] — the
/// reference for every levels-producing kernel (classic, hybrid, batched).
pub fn bfs_levels(g: &CsrGraph, source: NodeId) -> BfsLevels {
    let dist = bfs_distances(g, source);
    let eccentricity = dist.iter().copied().filter(|&d| d != UNREACHABLE).max().unwrap_or(0);
    let mut counts = vec![0u64; eccentricity as usize + 1];
    let mut reached = 0u64;
    for &d in &dist {
        if d != UNREACHABLE {
            counts[d as usize] += 1;
            reached += 1;
        }
    }
    BfsLevels { counts, eccentricity, reached }
}

/// The reachable set of nodes at each distance, sorted within each level.
/// Level 0 is `[source]`; the concatenation of all levels is the reachable
/// set.
pub fn bfs_level_sets(g: &CsrGraph, source: NodeId) -> Vec<Vec<NodeId>> {
    let dist = bfs_distances(g, source);
    let ecc = dist.iter().copied().filter(|&d| d != UNREACHABLE).max().unwrap_or(0);
    let mut levels: Vec<Vec<NodeId>> = vec![Vec::new(); ecc as usize + 1];
    for (v, &d) in dist.iter().enumerate() {
        if d != UNREACHABLE {
            levels[d as usize].push(v as NodeId);
        }
    }
    levels
}

/// Brute-force shortest-path sampling: one plain BFS per source, histogram
/// merged by hand. Mirrors the optimized estimator's contract exactly —
/// distance-0 pairs (the sources themselves) are dropped and `counts[0]`
/// stays zero.
pub fn path_length_distribution(g: &CsrGraph, sources: &[usize]) -> PathLengthDistribution {
    let mut counts: Vec<u64> = vec![0];
    let mut max_distance = 0u32;
    for &s in sources {
        let levels = bfs_levels(g, s as NodeId);
        if counts.len() < levels.counts.len() {
            counts.resize(levels.counts.len(), 0);
        }
        // skip d = 0: the source itself is not a pair
        for (d, &c) in levels.counts.iter().enumerate().skip(1) {
            counts[d] += c;
        }
        max_distance = max_distance.max(levels.eccentricity);
    }
    PathLengthDistribution { counts, sources: sources.len(), max_distance }
}

/// Directed clustering coefficient by the paper's definition, via nested
/// loops over the (self-loop-free) out-neighborhood: `O(deg²)` hash
/// probes per node. `None` when fewer than two eligible out-neighbors.
pub fn clustering_coefficient(es: &EdgeSet, g: &CsrGraph, u: NodeId) -> Option<f64> {
    let outs: Vec<NodeId> = g.out_neighbors(u).iter().copied().filter(|&v| v != u).collect();
    if outs.len() <= 1 {
        return None;
    }
    let mut closed = 0u64;
    for &v in &outs {
        for &w in &outs {
            if v != w && es.contains(v, w) {
                closed += 1;
            }
        }
    }
    Some(closed as f64 / (outs.len() * (outs.len() - 1)) as f64)
}

/// Pairwise relation reciprocity `|OS(u) ∩ IS(u)| / |OS(u)|` by linear
/// scans; `None` when `u` has no outgoing edges.
pub fn relation_reciprocity(es: &EdgeSet, g: &CsrGraph, u: NodeId) -> Option<f64> {
    let outs = g.out_neighbors(u);
    if outs.is_empty() {
        return None;
    }
    let mutual = outs.iter().filter(|&&v| es.contains(v, u)).count();
    Some(mutual as f64 / outs.len() as f64)
}

/// Global reciprocity: the fraction of directed edges whose reverse also
/// exists. A self-loop is its own reverse, exactly as in the optimized
/// kernel. `0.0` on an edgeless graph.
pub fn global_reciprocity(es: &EdgeSet, g: &CsrGraph) -> f64 {
    if es.is_empty() {
        return 0.0;
    }
    let mutual = g.edges().filter(|&(u, v)| es.contains(v, u)).count();
    mutual as f64 / es.len() as f64
}

/// Number of unordered reciprocal pairs `{u, v}` with `u < v` and both
/// directed edges present (self-loops excluded, matching the optimized
/// `reciprocal_pair_count`).
pub fn reciprocal_pair_count(es: &EdgeSet, g: &CsrGraph) -> u64 {
    g.edges().filter(|&(u, v)| u < v && es.contains(v, u)).count() as u64
}

/// Directed edge patterns of the 7 triangle motif classes over the labels
/// `{0, 1, 2}`, in [`gplus_graph::motifs::CLASS_NAMES`] index order. These
/// are the textbook triad-census shapes written out edge by edge — the
/// reference classifies by isomorphism against them, sharing nothing with
/// the kernel's dyad-code decision table.
const CLASS_EDGES: [&[(usize, usize)]; MOTIF_CLASSES] = [
    &[(0, 1), (1, 2), (0, 2)],                         // 030T: transitive
    &[(0, 1), (1, 2), (2, 0)],                         // 030C: 3-cycle
    &[(0, 1), (1, 0), (2, 0), (2, 1)],                 // 120D: outsider 2 points in
    &[(0, 1), (1, 0), (0, 2), (1, 2)],                 // 120U: dyad points at 2
    &[(0, 1), (1, 0), (0, 2), (2, 1)],                 // 120C: one each way
    &[(0, 1), (1, 0), (0, 2), (2, 0), (1, 2)],         // 210
    &[(0, 1), (1, 0), (0, 2), (2, 0), (1, 2), (2, 1)], // 300
];

/// Bit position of the ordered pair `(i, j)` (`i != j`, labels in `0..3`)
/// in the 6-bit triangle adjacency mask, row-major with the diagonal
/// skipped.
fn pair_bit(i: usize, j: usize) -> usize {
    i * 2 + if j > i { j - 1 } else { j }
}

/// Classifies the triangle candidate `{a, b, c}` by explicit isomorphism
/// search: build the 6-bit ordered-pair adjacency mask from `O(1)` edge
/// probes and find the class whose exemplar pattern matches under one of
/// the 6 label permutations. `None` when the triple is not a triangle
/// (some dyad disconnected), since no exemplar then matches.
pub fn classify_triangle(es: &EdgeSet, a: NodeId, b: NodeId, c: NodeId) -> Option<usize> {
    const PERMS: [[usize; 3]; 6] =
        [[0, 1, 2], [0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]];
    let nodes = [a, b, c];
    let mut mask = 0u8;
    for i in 0..3 {
        for j in 0..3 {
            if i != j && es.contains(nodes[i], nodes[j]) {
                mask |= 1 << pair_bit(i, j);
            }
        }
    }
    for (class, edges) in CLASS_EDGES.iter().enumerate() {
        for perm in PERMS {
            let mut want = 0u8;
            for &(x, y) in *edges {
                want |= 1 << pair_bit(perm[x], perm[y]);
            }
            if want == mask {
                return Some(class);
            }
        }
    }
    None
}

/// Distinct undirected neighbours of `c` with smaller ids (self-loops
/// drop out with the `< c` bound), sorted ascending.
fn undirected_neighbors_below(g: &CsrGraph, c: NodeId) -> Vec<NodeId> {
    let mut v: Vec<NodeId> = g
        .out_neighbors(c)
        .iter()
        .chain(g.in_neighbors(c))
        .copied()
        .filter(|&x| x < c)
        .collect();
    v.sort_unstable();
    v.dedup();
    v
}

/// Naive full-graph motif census: every triangle is found at its largest
/// node by pairwise probing that node's smaller undirected neighbourhood —
/// `O(Σ deg²)` hash probes — and classified by [`classify_triangle`].
pub fn motif_census(es: &EdgeSet, g: &CsrGraph) -> MotifCensus {
    let mut totals = [0u64; MOTIF_CLASSES];
    let mut per_node = vec![0u64; g.node_count()];
    for c in g.nodes() {
        let below = undirected_neighbors_below(g, c);
        for j in 0..below.len() {
            for i in 0..j {
                if let Some(class) = classify_triangle(es, below[i], below[j], c) {
                    totals[class] += 1;
                    per_node[below[i] as usize] += 1;
                    per_node[below[j] as usize] += 1;
                    per_node[c as usize] += 1;
                }
            }
        }
    }
    MotifCensus { totals, per_node }
}

/// Per-class counts of the triangles whose largest node is `c` — the
/// reference for the kernel's `apex_census`, used to spot-check graphs too
/// large for the full quadratic census.
pub fn apex_motif_census(es: &EdgeSet, g: &CsrGraph, c: NodeId) -> [u64; MOTIF_CLASSES] {
    let mut totals = [0u64; MOTIF_CLASSES];
    let below = undirected_neighbors_below(g, c);
    for j in 0..below.len() {
        for i in 0..j {
            if let Some(class) = classify_triangle(es, below[i], below[j], c) {
                totals[class] += 1;
            }
        }
    }
    totals
}

/// Number of triangles `u` is a corner of: pairwise probes over `u`'s full
/// undirected neighbourhood (`O(deg²)`), counting unordered adjacent
/// pairs. Matches the census's per-node participation definition.
pub fn node_triangle_participation(es: &EdgeSet, g: &CsrGraph, u: NodeId) -> u64 {
    let mut nbrs: Vec<NodeId> = g
        .out_neighbors(u)
        .iter()
        .chain(g.in_neighbors(u))
        .copied()
        .filter(|&x| x != u)
        .collect();
    nbrs.sort_unstable();
    nbrs.dedup();
    let mut count = 0u64;
    for j in 0..nbrs.len() {
        for i in 0..j {
            if es.contains(nbrs[i], nbrs[j]) || es.contains(nbrs[j], nbrs[i]) {
                count += 1;
            }
        }
    }
    count
}

/// Strongly connected components by a *recursive* Tarjan — deliberately a
/// different implementation style from the graph crate's two iterative
/// algorithms, so all three opinions share no code. Component ids are
/// assigned in an arbitrary (but deterministic) order; callers compare
/// partitions, not labels.
///
/// Recursion depth is bounded by the longest DFS path (≤ n); the sweep
/// runner executes on a large-stack thread so this stays safe at fuzzing
/// scale.
pub fn tarjan_scc(g: &CsrGraph) -> SccResult {
    struct State<'g> {
        g: &'g CsrGraph,
        index: Vec<u32>,
        lowlink: Vec<u32>,
        on_stack: Vec<bool>,
        stack: Vec<NodeId>,
        next_index: u32,
        component: Vec<u32>,
        count: u32,
    }
    const UNVISITED: u32 = u32::MAX;

    fn strongconnect(st: &mut State, v: NodeId) {
        let vi = v as usize;
        st.index[vi] = st.next_index;
        st.lowlink[vi] = st.next_index;
        st.next_index += 1;
        st.stack.push(v);
        st.on_stack[vi] = true;
        for i in 0..st.g.out_degree(v) {
            let w = st.g.out_neighbors(v)[i];
            let wi = w as usize;
            if st.index[wi] == UNVISITED {
                strongconnect(st, w);
                st.lowlink[vi] = st.lowlink[vi].min(st.lowlink[wi]);
            } else if st.on_stack[wi] {
                st.lowlink[vi] = st.lowlink[vi].min(st.index[wi]);
            }
        }
        if st.lowlink[vi] == st.index[vi] {
            // v roots an SCC: pop the stack down to v
            loop {
                let w = st.stack.pop().expect("stack holds the component");
                st.on_stack[w as usize] = false;
                st.component[w as usize] = st.count;
                if w == v {
                    break;
                }
            }
            st.count += 1;
        }
    }

    let n = g.node_count();
    let mut st = State {
        g,
        index: vec![UNVISITED; n],
        lowlink: vec![0; n],
        on_stack: vec![false; n],
        stack: Vec::new(),
        next_index: 0,
        component: vec![0; n],
        count: 0,
    };
    for v in 0..n as NodeId {
        if st.index[v as usize] == UNVISITED {
            strongconnect(&mut st, v);
        }
    }
    SccResult { component: st.component, count: st.count as usize }
}

/// Weakly connected components by plain flood fill over `out ∪ in`
/// adjacency from ascending unlabeled roots. Assigning dense ids by each
/// component's minimum member reproduces the optimized union–find
/// labelling exactly, not just the same partition.
pub fn weakly_connected_components(g: &CsrGraph) -> WccResult {
    let n = g.node_count();
    let mut component = vec![u32::MAX; n];
    let mut count = 0u32;
    let mut queue = VecDeque::new();
    for root in 0..n as NodeId {
        if component[root as usize] != u32::MAX {
            continue;
        }
        component[root as usize] = count;
        queue.push_back(root);
        while let Some(u) = queue.pop_front() {
            for &v in g.out_neighbors(u).iter().chain(g.in_neighbors(u)) {
                if component[v as usize] == u32::MAX {
                    component[v as usize] = count;
                    queue.push_back(v);
                }
            }
        }
        count += 1;
    }
    WccResult { component, count: count as usize }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gplus_graph::builder::from_edges;
    use gplus_graph::{bfs, clustering, reciprocity, scc, wcc};

    fn sample() -> CsrGraph {
        from_edges(
            9,
            [(0, 1), (1, 0), (1, 2), (2, 3), (3, 1), (4, 5), (5, 4), (6, 6), (0, 2), (2, 0)],
        )
    }

    #[test]
    fn reference_bfs_agrees_with_kernel_on_sample() {
        let g = sample();
        for s in g.nodes() {
            assert_eq!(bfs_distances(&g, s), bfs::distances(&g, s), "source {s}");
            assert_eq!(bfs_levels(&g, s), bfs::levels(&g, s), "source {s}");
        }
    }

    #[test]
    fn level_sets_partition_the_reachable_set() {
        let g = sample();
        let sets = bfs_level_sets(&g, 0);
        assert_eq!(sets[0], vec![0]);
        let total: usize = sets.iter().map(Vec::len).sum();
        assert_eq!(total as u64, bfs_levels(&g, 0).reached);
    }

    #[test]
    fn reference_paths_agree_with_estimator() {
        let g = sample();
        let sources: Vec<usize> = (0..g.node_count()).collect();
        let got = gplus_graph::paths::path_lengths_from_sources(&g, &sources);
        assert_eq!(path_length_distribution(&g, &sources), got);
    }

    #[test]
    fn reference_clustering_and_reciprocity_agree() {
        let g = sample();
        let es = EdgeSet::from_graph(&g);
        for u in g.nodes() {
            assert_eq!(
                clustering_coefficient(&es, &g, u),
                clustering::clustering_coefficient(&g, u),
                "cc of {u}"
            );
            assert_eq!(
                relation_reciprocity(&es, &g, u),
                reciprocity::relation_reciprocity(&g, u),
                "rr of {u}"
            );
        }
        assert_eq!(global_reciprocity(&es, &g), reciprocity::global_reciprocity(&g));
        assert_eq!(reciprocal_pair_count(&es, &g), reciprocity::reciprocal_pair_count(&g));
    }

    #[test]
    fn reference_scc_partition_matches_both_kernels() {
        let g = sample();
        let reference = tarjan_scc(&g);
        assert!(scc::same_partition(&reference, &scc::kosaraju(&g)));
        assert!(scc::same_partition(&reference, &scc::tarjan(&g)));
    }

    #[test]
    fn reference_wcc_labelling_matches_union_find() {
        let g = sample();
        assert_eq!(weakly_connected_components(&g), wcc::weakly_connected_components(&g));
    }

    #[test]
    fn empty_graph_is_fine_everywhere() {
        let g = from_edges(0, []);
        let es = EdgeSet::from_graph(&g);
        assert!(es.is_empty());
        assert_eq!(global_reciprocity(&es, &g), 0.0);
        assert_eq!(tarjan_scc(&g).count, 0);
        assert_eq!(weakly_connected_components(&g).count, 0);
        assert_eq!(path_length_distribution(&g, &[]).total_pairs(), 0);
        assert_eq!(motif_census(&es, &g), gplus_graph::motifs::census(&g));
    }

    #[test]
    fn isomorphism_classifier_recognises_every_exemplar() {
        // build each exemplar on 3 nodes and classify the unpermuted triple
        for (class, edges) in CLASS_EDGES.iter().enumerate() {
            let list: Vec<(NodeId, NodeId)> =
                edges.iter().map(|&(x, y)| (x as NodeId, y as NodeId)).collect();
            let g = from_edges(3, list);
            let es = EdgeSet::from_graph(&g);
            assert_eq!(classify_triangle(&es, 0, 1, 2), Some(class), "class {class}");
        }
        // a triple with a disconnected dyad is not a triangle
        let g = from_edges(3, [(0, 1), (1, 2)]);
        let es = EdgeSet::from_graph(&g);
        assert_eq!(classify_triangle(&es, 0, 1, 2), None);
    }

    #[test]
    fn reference_motif_census_agrees_with_kernel() {
        // the sample holds mutual dyads, a 2-3-1 cycle and self-loops
        let g = sample();
        let es = EdgeSet::from_graph(&g);
        let reference = motif_census(&es, &g);
        assert_eq!(reference, gplus_graph::motifs::census(&g));
        for c in g.nodes() {
            assert_eq!(
                apex_motif_census(&es, &g, c),
                gplus_graph::motifs::apex_census(&g, c),
                "apex {c}"
            );
            assert_eq!(
                node_triangle_participation(&es, &g, c),
                reference.per_node[c as usize],
                "participation of {c}"
            );
        }
    }
}
