//! Simulated time for retry backoff.
//!
//! The paper's crawl ran 47 days of wall time; tests cannot. All crawler
//! waiting happens on a [`SimClock`]: "sleeping" advances a shared atomic
//! tick counter instead of blocking the thread. Backoff schedules become
//! exactly testable (a test reads how many ticks a retry sequence cost)
//! and the whole chaos suite runs in milliseconds. A production build
//! would map one tick to one millisecond of `thread::sleep`; nothing in
//! the crawler would change.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotone, thread-safe simulated clock measured in abstract ticks.
#[derive(Debug, Default)]
pub struct SimClock {
    ticks: AtomicU64,
}

impl SimClock {
    /// A clock starting at tick zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// A clock resuming from a checkpointed tick count.
    pub fn starting_at(ticks: u64) -> Self {
        Self { ticks: AtomicU64::new(ticks) }
    }

    /// Current tick count.
    pub fn now(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }

    /// Simulates sleeping for `ticks`; returns the clock value after the
    /// sleep. Concurrent sleepers all advance the shared clock — total
    /// elapsed time is the *sum* of all backoff waits, which makes the
    /// final clock value independent of worker interleaving.
    pub fn advance(&self, ticks: u64) -> u64 {
        self.ticks.fetch_add(ticks, Ordering::Relaxed) + ticks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_advances() {
        let clock = SimClock::new();
        assert_eq!(clock.now(), 0);
        assert_eq!(clock.advance(5), 5);
        assert_eq!(clock.advance(3), 8);
        assert_eq!(clock.now(), 8);
    }

    #[test]
    fn resumes_from_checkpointed_time() {
        let clock = SimClock::starting_at(100);
        assert_eq!(clock.now(), 100);
        clock.advance(1);
        assert_eq!(clock.now(), 101);
    }

    #[test]
    fn concurrent_advances_all_land() {
        let clock = SimClock::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        clock.advance(2);
                    }
                });
            }
        });
        assert_eq!(clock.now(), 8 * 1000 * 2);
    }
}
