//! Crawler configuration.

use crate::retry::RetryPolicy;
use serde::{Deserialize, Serialize};

/// Knobs of the BFS crawl.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrawlerConfig {
    /// Seed user ids to start from. The paper used a single seed (Mark
    /// Zuckerberg) because "numeric user IDs were not supported" for random
    /// sampling; multiple seeds are supported for robustness experiments.
    pub seeds: Vec<u64>,
    /// Concurrent worker threads — the paper's "11 machines with different
    /// IP addresses".
    pub machines: usize,
    /// Per-request retry behaviour (budgets, backoff, jitter).
    #[serde(default)]
    pub retry: RetryPolicy,
    /// Stop after crawling this many profiles (`None` = exhaust the
    /// frontier). Partial crawls feed the bias experiments.
    pub max_profiles: Option<usize>,
    /// Upper bound on circle-list pages fetched per direction per user
    /// (`None` = page to the end). Guards runaway lists in stress tests.
    pub max_pages_per_list: Option<usize>,
    /// End-of-frontier sweep rounds over the dead-letter queue: users
    /// whose retries exhausted are parked and re-queued this many times
    /// once the frontier drains, so a mid-crawl outage does not
    /// permanently cost their subtrees.
    #[serde(default = "default_dead_letter_sweeps")]
    pub dead_letter_sweeps: usize,
    /// Snapshot the crawl every N collected profiles (`None` = never).
    #[serde(default)]
    pub checkpoint_every: Option<usize>,
}

fn default_dead_letter_sweeps() -> usize {
    2
}

impl Default for CrawlerConfig {
    fn default() -> Self {
        Self {
            // node 1 is Mark Zuckerberg in the seeded roster
            seeds: vec![1],
            machines: 11,
            retry: RetryPolicy::default(),
            max_profiles: None,
            max_pages_per_list: None,
            dead_letter_sweeps: default_dead_letter_sweeps(),
            checkpoint_every: None,
        }
    }
}

impl CrawlerConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    /// Panics on an empty seed list, zero machines, an invalid retry
    /// policy, or non-positive budgets/cadences.
    pub fn validate(&self) {
        assert!(!self.seeds.is_empty(), "crawler needs at least one seed");
        assert!(self.machines >= 1, "crawler needs at least one machine");
        self.retry.validate();
        if let Some(m) = self.max_profiles {
            assert!(m >= 1, "max_profiles must be positive when set");
        }
        if let Some(p) = self.max_pages_per_list {
            assert!(p >= 1, "max_pages_per_list must be positive when set");
        }
        if let Some(k) = self.checkpoint_every {
            assert!(k >= 1, "checkpoint_every must be positive when set");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_setup() {
        let c = CrawlerConfig::default();
        c.validate();
        assert_eq!(c.machines, 11);
        assert_eq!(c.seeds, vec![1]); // Mark Zuckerberg
        assert_eq!(c.max_profiles, None);
        assert_eq!(c.dead_letter_sweeps, 2);
        assert_eq!(c.checkpoint_every, None);
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn rejects_no_seeds() {
        CrawlerConfig { seeds: vec![], ..CrawlerConfig::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "at least one machine")]
    fn rejects_zero_machines() {
        CrawlerConfig { machines: 0, ..CrawlerConfig::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "transient_attempts")]
    fn rejects_zero_retry_budget() {
        // attempt budgets count *attempts*: 0 would mean never calling the
        // service and failing every request with a fabricated error
        let retry = RetryPolicy { transient_attempts: 0, ..RetryPolicy::default() };
        CrawlerConfig { retry, ..CrawlerConfig::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "checkpoint_every")]
    fn rejects_zero_checkpoint_cadence() {
        CrawlerConfig { checkpoint_every: Some(0), ..CrawlerConfig::default() }.validate();
    }

    #[test]
    fn config_round_trips_through_json() {
        let c = CrawlerConfig {
            max_profiles: Some(10),
            checkpoint_every: Some(5),
            ..CrawlerConfig::default()
        };
        let json = serde_json::to_string(&c).unwrap();
        let back: CrawlerConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }
}
