//! Crawler configuration.

use serde::{Deserialize, Serialize};

/// Knobs of the BFS crawl.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrawlerConfig {
    /// Seed user ids to start from. The paper used a single seed (Mark
    /// Zuckerberg) because "numeric user IDs were not supported" for random
    /// sampling; multiple seeds are supported for robustness experiments.
    pub seeds: Vec<u64>,
    /// Concurrent worker threads — the paper's "11 machines with different
    /// IP addresses".
    pub machines: usize,
    /// Maximum attempts per request before giving up on that request.
    pub max_retries: usize,
    /// Stop after crawling this many profiles (`None` = exhaust the
    /// frontier). Partial crawls feed the bias experiments.
    pub max_profiles: Option<usize>,
    /// Upper bound on circle-list pages fetched per direction per user
    /// (`None` = page to the end). Guards runaway lists in stress tests.
    pub max_pages_per_list: Option<usize>,
}

impl Default for CrawlerConfig {
    fn default() -> Self {
        Self {
            // node 1 is Mark Zuckerberg in the seeded roster
            seeds: vec![1],
            machines: 11,
            max_retries: 50,
            max_profiles: None,
            max_pages_per_list: None,
        }
    }
}

impl CrawlerConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    /// Panics on an empty seed list, zero machines, or zero retries.
    pub fn validate(&self) {
        assert!(!self.seeds.is_empty(), "crawler needs at least one seed");
        assert!(self.machines >= 1, "crawler needs at least one machine");
        assert!(self.max_retries >= 1, "crawler needs at least one attempt");
        if let Some(m) = self.max_profiles {
            assert!(m >= 1, "max_profiles must be positive when set");
        }
        if let Some(p) = self.max_pages_per_list {
            assert!(p >= 1, "max_pages_per_list must be positive when set");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_setup() {
        let c = CrawlerConfig::default();
        c.validate();
        assert_eq!(c.machines, 11);
        assert_eq!(c.seeds, vec![1]); // Mark Zuckerberg
        assert_eq!(c.max_profiles, None);
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn rejects_no_seeds() {
        CrawlerConfig { seeds: vec![], ..CrawlerConfig::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "at least one machine")]
    fn rejects_zero_machines() {
        CrawlerConfig { machines: 0, ..CrawlerConfig::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "at least one attempt")]
    fn rejects_zero_retries() {
        // max_retries counts *attempts*: 0 would mean never calling the
        // service and failing every request with a fabricated error
        CrawlerConfig { max_retries: 0, ..CrawlerConfig::default() }.validate();
    }
}
