//! Crawl output: discovered id space, collected graph, profile pages and
//! counters.

use gplus_graph::CsrGraph;
use gplus_service::ProfilePage;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Monotone counters describing one crawl.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrawlStats {
    /// Profiles successfully crawled (profile page + list paging done).
    pub profiles_crawled: u64,
    /// Users discovered (crawled or merely seen in someone's lists).
    pub users_discovered: u64,
    /// Circle-list entries collected across all crawled users' in- and
    /// out-lists, *before* deduplication — the same edge observed from both
    /// endpoints (u's out-list and v's in-list) counts twice here, so this
    /// exceeds the final graph's edge count.
    pub raw_edges: u64,
    /// Retries performed across all requests.
    pub retries: u64,
    /// Requests that failed transiently at least once.
    pub transient_errors: u64,
    /// Requests rejected by the rate limiter.
    pub rate_limited: u64,
    /// Users whose circle lists were private.
    pub private_list_users: u64,
    /// Users whose in-circles list hit the service's truncation cap.
    pub truncated_in_lists: u64,
    /// Users whose out-circles list hit the cap.
    pub truncated_out_lists: u64,
    /// Users abandoned after exhausting retries *and* dead-letter sweeps.
    pub failed_profiles: u64,
    /// Simulated clock ticks spent backing off across all requests.
    #[serde(default)]
    pub backoff_ticks: u64,
    /// Final simulated clock reading (total backoff the whole crawl paid).
    #[serde(default)]
    pub sim_ticks: u64,
    /// Users re-queued from the dead-letter queue by sweep rounds.
    #[serde(default)]
    pub dead_letter_requeues: u64,
    /// End-of-frontier sweep rounds performed over the dead-letter queue.
    #[serde(default)]
    pub sweep_rounds: u64,
    /// Users popped from the frontier but dropped because the profile
    /// budget had tripped. Previously these silently vanished, making
    /// `started` accounting unauditable.
    #[serde(default)]
    pub dropped_on_budget: u64,
}

/// Everything a crawl produced.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CrawlResult {
    /// Discovery-ordered external user ids: `user_ids[node] = user`.
    pub user_ids: Vec<u64>,
    /// Inverse mapping.
    pub index: HashMap<u64, u32>,
    /// The collected social graph over discovered nodes (crawled *and*
    /// seen-only users, as in the paper's 35.1M-node graph from 27.5M
    /// crawled profiles).
    pub graph: CsrGraph,
    /// Profile pages of crawled users, keyed by node id.
    pub pages: HashMap<u32, ProfilePage>,
    /// Counters.
    pub stats: CrawlStats,
}

impl CrawlResult {
    /// Dense node id of an external user id, if discovered.
    pub fn node_of(&self, user: u64) -> Option<u32> {
        self.index.get(&user).copied()
    }

    /// External user id of a node.
    pub fn user_of(&self, node: u32) -> u64 {
        self.user_ids[node as usize]
    }

    /// Number of profiles actually crawled.
    pub fn crawled_count(&self) -> usize {
        self.pages.len()
    }

    /// Number of users discovered (nodes in the graph).
    pub fn discovered_count(&self) -> usize {
        self.user_ids.len()
    }

    /// Fraction of discovered users that were crawled — the paper covered
    /// 27.5M of 35.1M ≈ 78% of its own graph's nodes.
    pub fn crawled_fraction(&self) -> f64 {
        if self.user_ids.is_empty() {
            0.0
        } else {
            self.pages.len() as f64 / self.user_ids.len() as f64
        }
    }

    /// Compares the crawl against ground truth (evaluation only).
    pub fn coverage(&self, truth: &CsrGraph) -> Coverage {
        let node_coverage = self.user_ids.len() as f64 / truth.node_count().max(1) as f64;
        // count true edges present in the crawled graph
        let mut found = 0u64;
        for (u, v) in truth.edges() {
            let (Some(cu), Some(cv)) = (self.node_of(u as u64), self.node_of(v as u64)) else {
                continue;
            };
            if self.graph.has_edge(cu, cv) {
                found += 1;
            }
        }
        Coverage {
            node_coverage,
            edge_coverage: found as f64 / truth.edge_count().max(1) as f64,
            crawled_profile_coverage: self.pages.len() as f64
                / truth.node_count().max(1) as f64,
        }
    }
}

impl CrawlResult {
    /// Serialises the whole result to JSON (the paper's crawl ran for 47
    /// days across 11 machines; persisting progress is table stakes).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("crawl results serialise")
    }

    /// Restores a result saved by [`CrawlResult::to_json`].
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

/// Crawl completeness relative to ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Coverage {
    /// Discovered nodes / true nodes.
    pub node_coverage: f64,
    /// Collected edges / true edges.
    pub edge_coverage: f64,
    /// Crawled profiles / true nodes (the paper's "56% of all registered
    /// users").
    pub crawled_profile_coverage: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use gplus_graph::builder::from_edges;

    #[test]
    fn coverage_of_identical_graph_is_one() {
        let truth = from_edges(3, [(0, 1), (1, 2)]);
        let result = CrawlResult {
            user_ids: vec![0, 1, 2],
            index: [(0u64, 0u32), (1, 1), (2, 2)].into_iter().collect(),
            graph: truth.clone(),
            pages: HashMap::new(),
            stats: CrawlStats::default(),
        };
        let cov = result.coverage(&truth);
        assert_eq!(cov.node_coverage, 1.0);
        assert_eq!(cov.edge_coverage, 1.0);
    }

    #[test]
    fn coverage_counts_missing_edges() {
        let truth = from_edges(3, [(0, 1), (1, 2), (2, 0), (0, 2)]);
        // crawl found only 2 of 4 edges and 3 of 3 nodes
        let partial = from_edges(3, [(0, 1), (1, 2)]);
        let result = CrawlResult {
            user_ids: vec![0, 1, 2],
            index: [(0u64, 0u32), (1, 1), (2, 2)].into_iter().collect(),
            graph: partial,
            pages: HashMap::new(),
            stats: CrawlStats::default(),
        };
        let cov = result.coverage(&truth);
        assert_eq!(cov.edge_coverage, 0.5);
    }

    #[test]
    fn id_mapping_round_trips() {
        let result = CrawlResult {
            user_ids: vec![42, 7, 99],
            index: [(42u64, 0u32), (7, 1), (99, 2)].into_iter().collect(),
            graph: from_edges(3, []),
            pages: HashMap::new(),
            stats: CrawlStats::default(),
        };
        assert_eq!(result.node_of(7), Some(1));
        assert_eq!(result.user_of(1), 7);
        assert_eq!(result.node_of(1000), None);
        assert_eq!(result.discovered_count(), 3);
    }
}
