//! Checkpoint/resume for long crawls.
//!
//! The paper's crawl ran 47 days; anything that long dies at least once.
//! A [`CrawlCheckpoint`] is a versioned snapshot of the entire crawl
//! state — discovery order, frontier (including requeued dead letters),
//! collected records, counters, and the simulated clock — taken under the
//! frontier lock so it is coherent: every user is either fully recorded
//! or back in the frontier, never half-crawled.
//!
//! Resume correctness rests on BFS closure being frontier-order
//! independent: the crawled set is the reachable set (minus permanently
//! failing users), whatever order the frontier drains in. A resumed crawl
//! therefore converges to the same canonical edge set as an uninterrupted
//! one — the chaos suite asserts exactly that.

use crate::config::CrawlerConfig;
use gplus_service::ProfilePage;
use serde::{Deserialize, Serialize};

/// Current checkpoint format version. Bump on any incompatible change to
/// [`CrawlCheckpoint`]; loading rejects other versions instead of
/// misinterpreting bytes.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Everything one worker collected for one user. Public (unlike the old
/// crawl-internal struct) because checkpoints persist these.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrawledRecord {
    /// The user's profile page.
    pub page: ProfilePage,
    /// Followers (users having this user in circles).
    pub in_list: Vec<u64>,
    /// Followees (users in this user's circles).
    pub out_list: Vec<u64>,
    /// Whether the in-list hit the service's truncation cap.
    pub truncated_in: bool,
    /// Whether the out-list hit the cap.
    pub truncated_out: bool,
    /// Whether the circle lists were private.
    pub private: bool,
    /// Retries spent on this user.
    pub retries: u64,
    /// Transient errors observed for this user.
    pub transient: u64,
    /// Rate-limit rejections observed for this user.
    pub rate_limited: u64,
    /// Simulated ticks spent backing off for this user.
    #[serde(default)]
    pub backoff_ticks: u64,
}

/// A coherent, versioned snapshot of crawl state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrawlCheckpoint {
    /// Format version; must equal [`CHECKPOINT_VERSION`] to load.
    pub version: u32,
    /// The configuration the crawl ran under (resume reuses it).
    pub config: CrawlerConfig,
    /// Simulated clock at snapshot time.
    pub clock: u64,
    /// Discovery-ordered external user ids.
    pub user_ids: Vec<u64>,
    /// Users discovered but not yet crawled: the queue plus everything
    /// that was in flight at snapshot time (in-flight work is rolled back
    /// into the frontier — a half-crawled user is re-crawled on resume).
    pub frontier: Vec<u64>,
    /// Users whose retries exhausted, awaiting an end-of-frontier sweep.
    pub dead_letters: Vec<u64>,
    /// Sweep rounds still available to the dead-letter queue.
    pub sweeps_left: usize,
    /// Profiles started (for `max_profiles` accounting), not counting
    /// rolled-back in-flight work.
    pub started: usize,
    /// Users dropped because the profile budget tripped.
    pub dropped_on_budget: u64,
    /// Dead-letter users requeued so far.
    pub requeues: u64,
    /// Dead-letter sweep rounds performed so far.
    pub sweep_rounds: u64,
    /// Users abandoned for good (retries and sweeps both exhausted).
    pub failed: Vec<u64>,
    /// Fully collected per-user records.
    pub records: Vec<CrawledRecord>,
}

/// Why a checkpoint failed to load.
#[derive(Debug)]
pub enum CheckpointError {
    /// The snapshot's format version is not supported.
    Version {
        /// Version found in the snapshot.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// The snapshot bytes failed to parse.
    Parse(serde_json::Error),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Version { found, supported } => {
                write!(f, "checkpoint version {found} unsupported (expected {supported})")
            }
            CheckpointError::Parse(e) => write!(f, "checkpoint failed to parse: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl CrawlCheckpoint {
    /// Serialises the checkpoint to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("checkpoints serialise")
    }

    /// Loads a checkpoint saved by [`CrawlCheckpoint::to_json`],
    /// rejecting unsupported versions.
    pub fn from_json(json: &str) -> Result<Self, CheckpointError> {
        let cp: CrawlCheckpoint = serde_json::from_str(json).map_err(CheckpointError::Parse)?;
        if cp.version != CHECKPOINT_VERSION {
            return Err(CheckpointError::Version {
                found: cp.version,
                supported: CHECKPOINT_VERSION,
            });
        }
        Ok(cp)
    }

    /// Profiles fully recorded in this snapshot.
    pub fn crawled_count(&self) -> usize {
        self.records.len()
    }

    /// Users still awaiting work (frontier plus dead letters).
    pub fn pending_count(&self) -> usize {
        self.frontier.len() + self.dead_letters.len()
    }
}
