//! BFS sampling-bias measurement.
//!
//! §2.2: "Although the BFS technique is simple and efficient, it exhibits
//! several well-known limitations such as the bias towards sampling high
//! degree nodes, which may affect the degree distribution [18, 35]."
//! The paper could only cite this; with a simulated service we can measure
//! it: run budget-limited crawls and compare the mean true degree of
//! crawled users against the population mean.

use crate::config::CrawlerConfig;
use crate::crawl::Crawler;
use gplus_service::GooglePlusService;
use serde::{Deserialize, Serialize};

/// One budget point of the bias curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BiasPoint {
    /// Profile budget of this crawl.
    pub budget: usize,
    /// Profiles actually crawled.
    pub crawled: usize,
    /// Mean *true* in-degree of crawled users.
    pub crawled_mean_in_degree: f64,
    /// Mean true in-degree of the whole population.
    pub population_mean_in_degree: f64,
    /// `crawled_mean / population_mean` — >1 means high-degree bias.
    pub bias_ratio: f64,
}

/// Runs budget-limited crawls and reports the degree bias at each budget.
///
/// Uses the service's ground truth for evaluation (the crawler itself never
/// sees it).
pub fn measure_bias(
    service: &GooglePlusService,
    budgets: &[usize],
    base_config: &CrawlerConfig,
) -> Vec<BiasPoint> {
    let truth = &service.ground_truth().graph;
    let population_mean = truth.edge_count() as f64 / truth.node_count().max(1) as f64;
    budgets
        .iter()
        .map(|&budget| {
            let crawler = Crawler::new(CrawlerConfig {
                max_profiles: Some(budget),
                ..base_config.clone()
            });
            let result = crawler.run(service);
            let crawled = result.crawled_count();
            let sum: u64 = result
                .pages
                .keys()
                .map(|&node| {
                    let user = result.user_of(node) as u32;
                    truth.in_degree(user) as u64
                })
                .sum();
            let crawled_mean = sum as f64 / crawled.max(1) as f64;
            BiasPoint {
                budget,
                crawled,
                crawled_mean_in_degree: crawled_mean,
                population_mean_in_degree: population_mean,
                bias_ratio: crawled_mean / population_mean.max(f64::MIN_POSITIVE),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gplus_service::ServiceConfig;
    use gplus_synth::{SynthConfig, SynthNetwork};

    #[test]
    fn early_bfs_oversamples_high_degree_nodes() {
        let net = SynthNetwork::generate(&SynthConfig::google_plus_2011(4_000, 55));
        let svc = GooglePlusService::new(
            net,
            ServiceConfig {
                failure_rate: 0.0,
                private_list_fraction: 0.0,
                ..Default::default()
            },
        );
        let points = measure_bias(&svc, &[150, 3_000], &CrawlerConfig::default());
        assert_eq!(points.len(), 2);
        // a small-budget BFS frontier is dominated by hubs
        assert!(
            points[0].bias_ratio > 1.3,
            "early crawl should be biased, ratio {}",
            points[0].bias_ratio
        );
        // bias washes out as coverage approaches 1
        assert!(
            points[1].bias_ratio < points[0].bias_ratio,
            "bias should shrink with coverage: {} -> {}",
            points[0].bias_ratio,
            points[1].bias_ratio
        );
    }
}
