//! Bidirectional BFS crawler over the simulated Google+ service.
//!
//! §2.2 of the paper: "we implemented a breadth-first search (BFS) crawler
//! in Python, considering both the public in-circles and out-circles lists
//! (i.e. bidirectional BFS). We began our crawl with Mark Zuckerberg ...
//! We used a total of 11 machines with different IP addresses."
//!
//! This crate reproduces that measurement apparatus:
//!
//! * [`Crawler`] — a multi-worker BFS: a shared FIFO frontier, `machines`
//!   worker threads (the paper's 11), per-request retry under a
//!   [`RetryPolicy`] (class-specific budgets, decorrelated-jitter backoff
//!   on a simulated [`SimClock`]), a dead-letter queue with
//!   end-of-frontier sweeps, pagination over both circle lists, and
//!   discovery-order node id assignment (the crawler never peeks at
//!   ground truth).
//! * [`CrawlCheckpoint`] — versioned snapshots of crawl state at a
//!   configurable cadence; [`Crawler::resume`] restarts a killed crawl
//!   and converges to the same graph as an uninterrupted run.
//! * [`CrawlResult`] — the collected profiles and edge list, compacted into
//!   a [`gplus_graph::CsrGraph`] whose nodes include users *seen but not
//!   crawled* — exactly why the paper's graph has 35.1M nodes from 27.5M
//!   crawled profiles.
//! * [`lost_edges`] — the paper's truncation estimator: users whose
//!   declared follower count exceeds the 10,000-entry list cap reveal how
//!   many edges the cap hides (1.6% in the paper).
//! * [`bias`] — BFS sampling-bias measurement: the paper cites the known
//!   high-degree bias of BFS crawls (\[18, 35\]); we can actually measure it
//!   against ground truth at partial coverage.
//! * [`sampler`] — the literature's remedy, Metropolis–Hastings random-walk
//!   sampling (\[18\]), implemented against the same service so the two
//!   samplers compare head-to-head.

pub mod bias;
pub mod checkpoint;
pub mod clock;
pub mod config;
pub mod crawl;
pub mod lost_edges;
pub mod result;
pub mod retry;
pub mod sampler;

pub use checkpoint::{CheckpointError, CrawlCheckpoint, CrawledRecord, CHECKPOINT_VERSION};
pub use clock::SimClock;
pub use config::CrawlerConfig;
pub use crawl::Crawler;
pub use lost_edges::LostEdgeEstimate;
pub use result::{CrawlResult, CrawlStats};
pub use retry::{RetryCounters, RetryPolicy};
pub use sampler::{mhrw, MhrwConfig, MhrwSample};
