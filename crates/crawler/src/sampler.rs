//! Metropolis–Hastings random-walk (MHRW) sampling.
//!
//! §2.2 cites the known high-degree bias of BFS crawls and the literature
//! remedies: uniform sampling by Metropolis–Hastings random walks (Gjoka
//! et al. \[18\]) and multidimensional random walks (Ribeiro & Towsley
//! \[35\]). This module implements MHRW against the *simulated service* —
//! the walker only ever sees public circle lists, exactly like the BFS
//! crawler — so the two samplers can be compared head-to-head on ground
//! truth (see the `crawl_bias` example and the crawl bench).
//!
//! MHRW walks the undirected view (in-circles ∪ out-circles) and accepts a
//! move `u → v` with probability `min(1, deg(u) / deg(v))`; its stationary
//! distribution is uniform over the connected component, removing the
//! degree bias a plain random walk (or BFS frontier) carries.

use crate::result::CrawlStats;
use gplus_service::{Direction, FetchError, SocialApi};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// MHRW configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MhrwConfig {
    /// Start user.
    pub seed_user: u64,
    /// Total accepted-or-rejected walk steps.
    pub steps: usize,
    /// Steps discarded before sampling starts (mixing time).
    pub burn_in: usize,
    /// Keep one sample every `thinning` steps after burn-in.
    pub thinning: usize,
    /// Retry budget per fetch.
    pub max_retries: usize,
}

impl Default for MhrwConfig {
    fn default() -> Self {
        Self { seed_user: 1, steps: 5_000, burn_in: 500, thinning: 5, max_retries: 50 }
    }
}

/// Result of one walk.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MhrwSample {
    /// Sampled user ids (with repetition — MHRW samples the stationary
    /// distribution, it does not enumerate).
    pub samples: Vec<u64>,
    /// Walk steps actually executed.
    pub steps: usize,
    /// Proposals rejected by the Metropolis filter.
    pub rejections: u64,
    /// Distinct users visited.
    pub distinct_visited: usize,
    /// Fetch statistics.
    pub stats: CrawlStats,
}

impl MhrwSample {
    /// Mean of a per-user statistic over the samples.
    pub fn estimate(&self, f: impl Fn(u64) -> f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|&u| f(u)).sum::<f64>() / self.samples.len() as f64
    }
}

/// Runs an MHRW walk against the service.
///
/// Users with private or empty neighbour lists act as reflecting states:
/// the walk stays put for that step (the standard lazy-walk treatment).
pub fn mhrw<S: SocialApi, R: Rng + ?Sized>(
    service: &S,
    config: &MhrwConfig,
    rng: &mut R,
) -> MhrwSample {
    let mut stats = CrawlStats::default();
    let mut neighbor_cache: HashMap<u64, Vec<u64>> = HashMap::new();
    let mut fetch_neighbors = |user: u64, stats: &mut CrawlStats| -> Vec<u64> {
        if let Some(cached) = neighbor_cache.get(&user) {
            return cached.clone();
        }
        let mut all = Vec::new();
        for direction in [Direction::InCircles, Direction::OutCircles] {
            let mut page = 0;
            loop {
                let mut attempts = 0;
                let circle = loop {
                    match service.fetch_circle_page(user, direction, page) {
                        Ok(c) => break Some(c),
                        Err(e) if e.is_retryable() && attempts < config.max_retries => {
                            attempts += 1;
                            stats.retries += 1;
                            if e == FetchError::Transient {
                                stats.transient_errors += 1;
                            } else {
                                stats.rate_limited += 1;
                            }
                        }
                        Err(FetchError::PrivateList) => {
                            stats.private_list_users += 1;
                            break None;
                        }
                        Err(_) => break None,
                    }
                };
                let Some(circle) = circle else { break };
                all.extend_from_slice(&circle.users);
                if !circle.has_more {
                    break;
                }
                page += 1;
            }
        }
        all.sort_unstable();
        all.dedup();
        neighbor_cache.insert(user, all.clone());
        all
    };

    let mut current = config.seed_user;
    let mut current_neighbors = fetch_neighbors(current, &mut stats);
    let mut samples = Vec::new();
    let mut rejections = 0u64;
    let mut visited: std::collections::HashSet<u64> = [current].into_iter().collect();

    for step in 0..config.steps {
        if !current_neighbors.is_empty() {
            let proposal = current_neighbors[rng.random_range(0..current_neighbors.len())];
            let proposal_neighbors = fetch_neighbors(proposal, &mut stats);
            let deg_u = current_neighbors.len() as f64;
            let deg_v = proposal_neighbors.len().max(1) as f64;
            if rng.random_range(0.0..1.0) < (deg_u / deg_v).min(1.0) {
                current = proposal;
                current_neighbors = proposal_neighbors;
                visited.insert(current);
            } else {
                rejections += 1;
            }
        }
        if step >= config.burn_in && (step - config.burn_in) % config.thinning.max(1) == 0 {
            samples.push(current);
        }
    }

    stats.profiles_crawled = neighbor_cache.len() as u64;
    MhrwSample {
        samples,
        steps: config.steps,
        rejections,
        distinct_visited: visited.len(),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gplus_service::{GooglePlusService, ServiceConfig};
    use gplus_synth::{SynthConfig, SynthNetwork};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn service(n: usize, seed: u64) -> GooglePlusService {
        let net = SynthNetwork::generate(&SynthConfig::google_plus_2011(n, seed));
        GooglePlusService::new(
            net,
            ServiceConfig {
                failure_rate: 0.0,
                private_list_fraction: 0.0,
                ..Default::default()
            },
        )
    }

    #[test]
    fn walk_moves_and_samples() {
        let svc = service(2_000, 31);
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = MhrwConfig { steps: 1_000, burn_in: 100, thinning: 2, ..Default::default() };
        let out = mhrw(&svc, &cfg, &mut rng);
        assert_eq!(out.samples.len(), (1_000usize - 100).div_ceil(2));
        assert!(out.distinct_visited > 50, "visited {}", out.distinct_visited);
        assert!(out.rejections > 0, "Metropolis filter should reject sometimes");
    }

    #[test]
    fn mhrw_less_degree_biased_than_bfs() {
        // the headline property: MHRW's sampled mean degree tracks the
        // population mean, while a budget-matched BFS crawl overshoots
        let svc = service(4_000, 32);
        let truth = &svc.ground_truth().graph;
        let pop_mean = truth.edge_count() as f64 / truth.node_count() as f64;

        let mut rng = StdRng::seed_from_u64(2);
        let cfg =
            MhrwConfig { steps: 6_000, burn_in: 1_000, thinning: 3, ..Default::default() };
        let walk = mhrw(&svc, &cfg, &mut rng);
        let mhrw_mean = walk.estimate(|u| truth.in_degree(u as u32) as f64);

        let bias = crate::bias::measure_bias(
            &svc,
            &[walk.stats.profiles_crawled as usize],
            &crate::config::CrawlerConfig::default(),
        );
        let bfs_mean = bias[0].crawled_mean_in_degree;

        let mhrw_err = (mhrw_mean - pop_mean).abs() / pop_mean;
        let bfs_err = (bfs_mean - pop_mean).abs() / pop_mean;
        assert!(
            mhrw_err < bfs_err,
            "MHRW error {mhrw_err:.3} should beat BFS error {bfs_err:.3} \
             (population mean {pop_mean:.2}, MHRW {mhrw_mean:.2}, BFS {bfs_mean:.2})"
        );
        assert!(mhrw_err < 0.5, "MHRW should be roughly unbiased, error {mhrw_err:.3}");
    }

    #[test]
    fn deterministic_given_rng() {
        let svc = service(1_000, 33);
        let cfg = MhrwConfig { steps: 500, burn_in: 50, thinning: 5, ..Default::default() };
        let a = mhrw(&svc, &cfg, &mut StdRng::seed_from_u64(7));
        let b = mhrw(&svc, &cfg, &mut StdRng::seed_from_u64(7));
        assert_eq!(a.samples, b.samples);
    }

    #[test]
    fn private_lists_reflect() {
        let net = SynthNetwork::generate(&SynthConfig::google_plus_2011(1_000, 34));
        let svc = GooglePlusService::new(
            net,
            ServiceConfig {
                failure_rate: 0.0,
                private_list_fraction: 0.5,
                ..Default::default()
            },
        );
        let cfg = MhrwConfig { steps: 400, burn_in: 50, thinning: 5, ..Default::default() };
        let out = mhrw(&svc, &cfg, &mut StdRng::seed_from_u64(8));
        // the walk survives despite half the lists being private
        assert!(!out.samples.is_empty());
        assert!(out.stats.private_list_users > 0);
    }
}
