//! Retry policy: exponential backoff with decorrelated jitter on a
//! simulated clock.
//!
//! The seed crawler retried in a bare loop with `yield_now()` — no
//! backoff, no per-error budgets, untestable timing. [`RetryPolicy`]
//! replaces it:
//!
//! * **separate budgets** for [`FetchError::Transient`] (give up early —
//!   the user may be permanently broken) and [`FetchError::RateLimited`]
//!   (be patient — the bucket refills with time);
//! * **decorrelated jitter** (the AWS Architecture Blog scheme):
//!   `sleep = min(cap, base + uniform(0, 3·prev − base))`, which spreads
//!   synchronized workers apart after a shared outage instead of letting
//!   them retry in lockstep;
//! * **deterministic jitter**: the "random" draw hashes
//!   `(jitter_seed, user, attempt)`, so a rerun with the same seeds waits
//!   the same ticks — and because decisions are per-user, the *total*
//!   backoff spent is independent of how workers interleave;
//! * **simulated time**: waits advance a [`SimClock`], never a wall clock.

use crate::clock::SimClock;
use gplus_service::failure::splitmix64;
use gplus_service::FetchError;
use serde::{Deserialize, Serialize};

/// Stream-separation constant for jitter draws.
const STREAM_JITTER: u64 = 0xd6e8_feb8_6659_fd93;

/// Retry behaviour for one logical request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Attempts allowed when the service answers [`FetchError::Transient`].
    pub transient_attempts: usize,
    /// Attempts allowed when the service answers
    /// [`FetchError::RateLimited`]. Rate limiting heals with time, so this
    /// budget is typically much larger than the transient one.
    pub rate_limited_attempts: usize,
    /// Minimum backoff per retry, in clock ticks (>= 1).
    pub base_backoff: u64,
    /// Backoff cap per retry, in clock ticks (>= `base_backoff`).
    pub max_backoff: u64,
    /// Seed for the deterministic jitter draws.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            transient_attempts: 50,
            rate_limited_attempts: 400,
            base_backoff: 1,
            max_backoff: 1_024,
            jitter_seed: 0x7e57_ab1e_c0ff_ee00,
        }
    }
}

/// Counters one retried request accumulates.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RetryCounters {
    /// Failed attempts that led to another attempt.
    pub retries: u64,
    /// Transient errors observed.
    pub transient: u64,
    /// Rate-limit rejections observed.
    pub rate_limited: u64,
    /// Simulated ticks spent backing off.
    pub backoff_ticks: u64,
}

impl RetryPolicy {
    /// Validates the policy.
    ///
    /// # Panics
    /// Panics on zero attempt budgets, a zero base, or a cap below the
    /// base.
    pub fn validate(&self) {
        assert!(self.transient_attempts >= 1, "transient_attempts must be >= 1");
        assert!(self.rate_limited_attempts >= 1, "rate_limited_attempts must be >= 1");
        assert!(self.base_backoff >= 1, "base_backoff must be >= 1 tick");
        assert!(self.max_backoff >= self.base_backoff, "max_backoff must be >= base_backoff");
    }

    /// The decorrelated-jitter wait before retry number `attempt` of a
    /// request for `user`, given the previous wait. Deterministic in
    /// `(jitter_seed, user, attempt)`.
    pub fn backoff(&self, user: u64, attempt: u32, prev: u64) -> u64 {
        // span of the uniform draw: [0, 3·prev − base), at least 1 wide
        let ceiling = prev.saturating_mul(3).max(self.base_backoff + 1);
        let span = ceiling - self.base_backoff;
        let h = splitmix64(
            self.jitter_seed.wrapping_mul(STREAM_JITTER)
                ^ splitmix64(user)
                ^ u64::from(attempt).rotate_left(23),
        );
        (self.base_backoff + h % span).min(self.max_backoff)
    }

    /// Runs `attempt` until it succeeds, exhausts the budget matching its
    /// error class, or fails non-retryably. Always makes at least one
    /// attempt; the returned error always comes from the service, never
    /// fabricated here. Each retry advances `clock` by the jittered
    /// backoff and accumulates into `counters`.
    pub fn execute<T>(
        &self,
        clock: &SimClock,
        user: u64,
        counters: &mut RetryCounters,
        mut attempt: impl FnMut() -> Result<T, FetchError>,
    ) -> Result<T, FetchError> {
        let mut transient_left = self.transient_attempts.max(1);
        let mut rate_limited_left = self.rate_limited_attempts.max(1);
        let mut prev = self.base_backoff;
        let mut attempt_no: u32 = 0;
        loop {
            match attempt() {
                Ok(v) => return Ok(v),
                Err(e @ FetchError::Transient) => {
                    counters.transient += 1;
                    transient_left -= 1;
                    if transient_left == 0 {
                        return Err(e);
                    }
                }
                Err(e @ FetchError::RateLimited) => {
                    counters.rate_limited += 1;
                    rate_limited_left -= 1;
                    if rate_limited_left == 0 {
                        return Err(e);
                    }
                }
                Err(e) => return Err(e),
            }
            counters.retries += 1;
            let pause = self.backoff(user, attempt_no, prev);
            prev = pause;
            counters.backoff_ticks += pause;
            clock.advance(pause);
            attempt_no += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> RetryPolicy {
        RetryPolicy { transient_attempts: 5, rate_limited_attempts: 8, ..Default::default() }
    }

    #[test]
    fn success_needs_no_backoff() {
        let clock = SimClock::new();
        let mut counters = RetryCounters::default();
        let mut calls = 0u32;
        let r = policy().execute(&clock, 1, &mut counters, || {
            calls += 1;
            Ok::<u32, FetchError>(7)
        });
        assert_eq!(r, Ok(7));
        assert_eq!(calls, 1);
        assert_eq!(clock.now(), 0, "no backoff on immediate success");
        assert_eq!(counters, RetryCounters::default());
    }

    #[test]
    fn always_attempts_at_least_once() {
        // regression carried over from the old with_retries: zero budgets
        // (validate bypassed) must still consult the service once
        let p = RetryPolicy { transient_attempts: 0, rate_limited_attempts: 0, ..policy() };
        let clock = SimClock::new();
        let mut counters = RetryCounters::default();
        let mut calls = 0u32;
        let r = p.execute(&clock, 1, &mut counters, || {
            calls += 1;
            Ok::<u32, FetchError>(9)
        });
        assert_eq!(r, Ok(9));
        assert_eq!(calls, 1);
    }

    #[test]
    fn error_comes_from_the_service() {
        let clock = SimClock::new();
        let mut counters = RetryCounters::default();
        let mut calls = 0u32;
        let r: Result<u32, FetchError> = policy().execute(&clock, 1, &mut counters, || {
            calls += 1;
            Err(FetchError::NotFound)
        });
        assert_eq!(calls, 1, "non-retryable errors end the loop immediately");
        assert_eq!(r, Err(FetchError::NotFound));
        assert_eq!(clock.now(), 0);
    }

    #[test]
    fn transient_budget_is_separate_from_rate_limit_budget() {
        let p = policy(); // 5 transient, 8 rate-limited
        let clock = SimClock::new();
        let mut counters = RetryCounters::default();
        let r: Result<u32, FetchError> =
            p.execute(&clock, 1, &mut counters, || Err(FetchError::Transient));
        assert_eq!(r, Err(FetchError::Transient));
        assert_eq!(counters.transient, 5);
        assert_eq!(counters.retries, 4, "the exhausting failure is not a retry");

        let mut counters = RetryCounters::default();
        let r: Result<u32, FetchError> =
            p.execute(&clock, 1, &mut counters, || Err(FetchError::RateLimited));
        assert_eq!(r, Err(FetchError::RateLimited));
        assert_eq!(counters.rate_limited, 8);
    }

    #[test]
    fn mixed_errors_draw_from_both_budgets() {
        let p = policy();
        let clock = SimClock::new();
        let mut counters = RetryCounters::default();
        let mut calls = 0u32;
        // alternate Transient / RateLimited; succeed on call 7
        let r = p.execute(&clock, 1, &mut counters, || {
            calls += 1;
            match calls {
                7 => Ok(1u32),
                n if n % 2 == 1 => Err(FetchError::Transient),
                _ => Err(FetchError::RateLimited),
            }
        });
        assert_eq!(r, Ok(1));
        assert_eq!(counters.transient, 3);
        assert_eq!(counters.rate_limited, 3);
        assert_eq!(counters.retries, 6);
    }

    #[test]
    fn backoff_advances_the_simulated_clock() {
        let p = policy();
        let clock = SimClock::new();
        let mut counters = RetryCounters::default();
        let _: Result<u32, FetchError> =
            p.execute(&clock, 42, &mut counters, || Err(FetchError::Transient));
        assert!(counters.backoff_ticks > 0, "retries must back off");
        assert_eq!(
            clock.now(),
            counters.backoff_ticks,
            "every backoff tick lands on the shared clock"
        );
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let p = RetryPolicy::default();
        let mut prev = p.base_backoff;
        for attempt in 0..40u32 {
            let a = p.backoff(9, attempt, prev);
            let b = p.backoff(9, attempt, prev);
            assert_eq!(a, b);
            assert!(a >= p.base_backoff && a <= p.max_backoff, "attempt {attempt}: {a}");
            prev = a;
        }
    }

    #[test]
    fn backoff_grows_from_base_toward_cap() {
        let p = RetryPolicy::default();
        // follow the decorrelated chain; it must reach well above base and
        // respect the cap
        let mut prev = p.base_backoff;
        let mut peak = 0u64;
        for attempt in 0..64u32 {
            prev = p.backoff(3, attempt, prev);
            peak = peak.max(prev);
        }
        assert!(peak > p.base_backoff * 8, "jitter never grew: peak {peak}");
        assert!(peak <= p.max_backoff);
    }

    #[test]
    fn different_users_get_decorrelated_schedules() {
        let p = RetryPolicy::default();
        let chain = |user: u64| {
            let mut prev = p.base_backoff;
            (0..10u32)
                .map(|a| {
                    prev = p.backoff(user, a, prev);
                    prev
                })
                .collect::<Vec<u64>>()
        };
        assert_ne!(chain(1), chain(2), "users must not retry in lockstep");
    }

    #[test]
    #[should_panic(expected = "transient_attempts")]
    fn validate_rejects_zero_transient_budget() {
        RetryPolicy { transient_attempts: 0, ..Default::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "max_backoff")]
    fn validate_rejects_cap_below_base() {
        RetryPolicy { base_backoff: 10, max_backoff: 5, ..Default::default() }.validate();
    }
}
