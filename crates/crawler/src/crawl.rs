//! The multi-worker bidirectional BFS crawl.
//!
//! Fault tolerance model:
//!
//! * every request runs under the configured [`RetryPolicy`] — bounded
//!   budgets per error class, decorrelated-jitter backoff on a shared
//!   [`SimClock`] (no wall-clock sleeps anywhere in the crawler);
//! * users whose retries exhaust go to a **dead-letter queue** instead of
//!   being abandoned: when the frontier drains, up to
//!   [`CrawlerConfig::dead_letter_sweeps`] sweep rounds re-queue them, so
//!   a mid-crawl outage does not permanently cost whole subtrees;
//! * with [`CrawlerConfig::checkpoint_every`] set, workers take coherent
//!   [`CrawlCheckpoint`] snapshots under the frontier lock;
//!   [`Crawler::resume`] restarts from one and converges to the same
//!   graph as an uninterrupted run (BFS closure is frontier-order
//!   independent).

use crate::checkpoint::{CrawlCheckpoint, CrawledRecord, CHECKPOINT_VERSION};
use crate::clock::SimClock;
use crate::config::CrawlerConfig;
use crate::result::{CrawlResult, CrawlStats};
use crate::retry::{RetryCounters, RetryPolicy};
use gplus_graph::GraphBuilder;
use gplus_obs::Registry;
use gplus_service::{Direction, FetchError, ProfilePage, SocialApi};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// The crawler. Holds only configuration (and a metrics registry); all
/// run state lives in [`Crawler::run`]'s frame, so one crawler can run
/// multiple crawls.
#[derive(Debug, Clone)]
pub struct Crawler {
    config: CrawlerConfig,
    registry: Arc<Registry>,
}

/// Frontier and bookkeeping shared between workers.
struct Shared {
    queue: VecDeque<u64>,
    discovered: HashMap<u64, u32>,
    user_ids: Vec<u64>,
    /// Identities (not just a count) of users being crawled right now —
    /// checkpoints roll these back into the frontier.
    in_flight: Vec<u64>,
    started: usize,
    stop: bool,
    /// Users whose retry budgets exhausted, parked for a sweep round.
    dead_letters: Vec<u64>,
    sweeps_left: usize,
    sweep_rounds: u64,
    requeues: u64,
    dropped_on_budget: u64,
    /// Users abandoned for good (non-retryable error, or retries and
    /// sweeps both exhausted).
    failed: Vec<u64>,
}

impl Shared {
    fn discover(&mut self, user: u64) -> u32 {
        match self.discovered.get(&user) {
            Some(&id) => id,
            None => {
                let id = self.user_ids.len() as u32;
                self.user_ids.push(user);
                self.discovered.insert(user, id);
                id
            }
        }
    }
}

/// One crawl's complete run state.
struct RunCtx {
    shared: Mutex<Shared>,
    work_ready: Condvar,
    collected: Mutex<Vec<CrawledRecord>>,
    snapshots: Mutex<Vec<CrawlCheckpoint>>,
    clock: SimClock,
}

impl Crawler {
    /// Creates a crawler.
    ///
    /// # Panics
    /// Panics if the configuration is invalid.
    pub fn new(config: CrawlerConfig) -> Self {
        Self::with_registry(config, Arc::clone(gplus_obs::global()))
    }

    /// Like [`Self::new`] but recording metrics into `registry` instead
    /// of the process-global one (for exact-equality tests).
    ///
    /// # Panics
    /// Panics if the configuration is invalid.
    pub fn with_registry(config: CrawlerConfig, registry: Arc<Registry>) -> Self {
        config.validate();
        Self { config, registry }
    }

    /// The paper's setup: single seed (node 1 = Mark Zuckerberg), 11
    /// machines, crawl to exhaustion.
    pub fn paper_setup() -> Self {
        Self::new(CrawlerConfig::default())
    }

    /// The active configuration.
    pub fn config(&self) -> &CrawlerConfig {
        &self.config
    }

    /// The metrics registry this crawler records into.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Runs a full crawl against any [`SocialApi`] transport.
    pub fn run<S: SocialApi>(&self, service: &S) -> CrawlResult {
        self.run_inner(service, None).0
    }

    /// Runs a full crawl, also returning every checkpoint taken along the
    /// way (empty unless [`CrawlerConfig::checkpoint_every`] is set).
    pub fn run_checkpointed<S: SocialApi>(
        &self,
        service: &S,
    ) -> (CrawlResult, Vec<CrawlCheckpoint>) {
        self.run_inner(service, None)
    }

    /// Resumes a crawl from a checkpoint: the frontier, discovery order,
    /// collected records, counters and simulated clock all restore; users
    /// that were in flight at snapshot time are re-crawled. Converges to
    /// the same graph as the uninterrupted crawl would have.
    pub fn resume<S: SocialApi>(service: &S, checkpoint: &CrawlCheckpoint) -> CrawlResult {
        let crawler = Crawler::new(checkpoint.config.clone());
        crawler.run_inner(service, Some(checkpoint)).0
    }

    fn run_inner<S: SocialApi>(
        &self,
        service: &S,
        resume: Option<&CrawlCheckpoint>,
    ) -> (CrawlResult, Vec<CrawlCheckpoint>) {
        let ctx = match resume {
            None => {
                let mut shared = Shared {
                    queue: VecDeque::new(),
                    discovered: HashMap::new(),
                    user_ids: Vec::new(),
                    in_flight: Vec::new(),
                    started: 0,
                    stop: false,
                    dead_letters: Vec::new(),
                    sweeps_left: self.config.dead_letter_sweeps,
                    sweep_rounds: 0,
                    requeues: 0,
                    dropped_on_budget: 0,
                    failed: Vec::new(),
                };
                for &seed in &self.config.seeds {
                    shared.discover(seed);
                    shared.queue.push_back(seed);
                }
                RunCtx {
                    shared: Mutex::new(shared),
                    work_ready: Condvar::new(),
                    collected: Mutex::new(Vec::new()),
                    snapshots: Mutex::new(Vec::new()),
                    clock: SimClock::new(),
                }
            }
            Some(cp) => {
                let mut discovered = HashMap::with_capacity(cp.user_ids.len());
                for (node, &user) in cp.user_ids.iter().enumerate() {
                    discovered.insert(user, node as u32);
                }
                RunCtx {
                    shared: Mutex::new(Shared {
                        queue: cp.frontier.iter().copied().collect(),
                        discovered,
                        user_ids: cp.user_ids.clone(),
                        in_flight: Vec::new(),
                        started: cp.started,
                        stop: false,
                        dead_letters: cp.dead_letters.clone(),
                        sweeps_left: cp.sweeps_left,
                        sweep_rounds: cp.sweep_rounds,
                        requeues: cp.requeues,
                        dropped_on_budget: cp.dropped_on_budget,
                        failed: cp.failed.clone(),
                    }),
                    work_ready: Condvar::new(),
                    collected: Mutex::new(cp.records.clone()),
                    snapshots: Mutex::new(Vec::new()),
                    clock: SimClock::starting_at(cp.clock),
                }
            }
        };

        std::thread::scope(|scope| {
            for _ in 0..self.config.machines {
                scope.spawn(|| self.worker(service, &ctx));
            }
        });

        // --- assemble the result ---
        let RunCtx { shared, collected, snapshots, clock, .. } = ctx;
        let shared = shared.into_inner();
        let collected = collected.into_inner();
        let snapshots = snapshots.into_inner();

        // users_discovered is set after interning: failed profiles' list
        // entries can add users beyond what the workers saw
        let mut stats = CrawlStats {
            failed_profiles: (shared.failed.len() + shared.dead_letters.len()) as u64,
            dead_letter_requeues: shared.requeues,
            sweep_rounds: shared.sweep_rounds,
            dropped_on_budget: shared.dropped_on_budget,
            sim_ticks: clock.now(),
            ..CrawlStats::default()
        };

        // The graph covers every discovered user; edges come from both
        // directions of every crawled user's lists.
        let mut index = shared.discovered;
        let mut user_ids = shared.user_ids;
        let mut builder = GraphBuilder::new();
        let mut pages: HashMap<u32, ProfilePage> = HashMap::with_capacity(collected.len());
        let intern = |user: u64, index: &mut HashMap<u64, u32>, user_ids: &mut Vec<u64>| {
            *index.entry(user).or_insert_with(|| {
                let id = user_ids.len() as u32;
                user_ids.push(user);
                id
            })
        };
        let backoff_hist = self.registry.histogram("crawler.retry.backoff_per_user_ticks");
        for item in collected {
            backoff_hist.observe(item.backoff_ticks);
            let u = intern(item.page.user_id, &mut index, &mut user_ids);
            stats.profiles_crawled += 1;
            stats.retries += item.retries;
            stats.transient_errors += item.transient;
            stats.rate_limited += item.rate_limited;
            stats.backoff_ticks += item.backoff_ticks;
            if item.private {
                stats.private_list_users += 1;
            }
            if item.truncated_in {
                stats.truncated_in_lists += 1;
            }
            if item.truncated_out {
                stats.truncated_out_lists += 1;
            }
            for follower in item.in_list {
                let f = intern(follower, &mut index, &mut user_ids);
                builder.add_edge(f, u);
                stats.raw_edges += 1;
            }
            for followee in item.out_list {
                let f = intern(followee, &mut index, &mut user_ids);
                builder.add_edge(u, f);
                stats.raw_edges += 1;
            }
            pages.insert(u, item.page);
        }
        stats.users_discovered = user_ids.len() as u64;
        builder.ensure_nodes(user_ids.len());
        let graph = builder.build();

        let obs = &self.registry;
        obs.counter("crawler.profiles_crawled_count").add(stats.profiles_crawled);
        obs.counter("crawler.retry.attempts_count").add(stats.retries);
        obs.counter("crawler.retry.transient_count").add(stats.transient_errors);
        obs.counter("crawler.retry.rate_limited_count").add(stats.rate_limited);
        obs.counter("crawler.retry.backoff_ticks").add(stats.backoff_ticks);
        obs.counter("crawler.dead_letter.requeues_count").add(stats.dead_letter_requeues);
        obs.counter("crawler.dead_letter.sweep_rounds_count").add(stats.sweep_rounds);
        obs.counter("crawler.failed_profiles_count").add(stats.failed_profiles);
        obs.gauge("crawler.sim_ticks").set(stats.sim_ticks as f64);
        obs.gauge("crawler.users_discovered_count").set(stats.users_discovered as f64);

        (CrawlResult { user_ids, index, graph, pages, stats }, snapshots)
    }

    fn worker<S: SocialApi>(&self, service: &S, ctx: &RunCtx) {
        loop {
            // --- acquire a user to crawl ---
            let user = {
                let mut s = ctx.shared.lock();
                loop {
                    if s.stop {
                        return;
                    }
                    if let Some(u) = s.queue.pop_front() {
                        if let Some(budget) = self.config.max_profiles {
                            if s.started >= budget {
                                s.dropped_on_budget += 1;
                                s.stop = true;
                                ctx.work_ready.notify_all();
                                return;
                            }
                        }
                        s.started += 1;
                        s.in_flight.push(u);
                        break u;
                    }
                    if s.in_flight.is_empty() {
                        if !s.dead_letters.is_empty() && s.sweeps_left > 0 {
                            // end-of-frontier sweep: give every dead
                            // letter another shot
                            s.sweeps_left -= 1;
                            s.sweep_rounds += 1;
                            s.requeues += s.dead_letters.len() as u64;
                            let retry_users = std::mem::take(&mut s.dead_letters);
                            s.queue.extend(retry_users);
                            ctx.work_ready.notify_all();
                            continue;
                        }
                        // frontier exhausted and nobody can refill it
                        ctx.work_ready.notify_all();
                        return;
                    }
                    ctx.work_ready.wait(&mut s);
                }
            };

            // --- crawl the user (no locks held) ---
            let outcome = self.crawl_user(service, &ctx.clock, user);

            // --- publish results and refill the frontier ---
            let mut s = ctx.shared.lock();
            let pos =
                s.in_flight.iter().position(|&u| u == user).expect("crawled user is in flight");
            s.in_flight.swap_remove(pos);
            match outcome {
                Ok(record) => {
                    for &other in record.in_list.iter().chain(&record.out_list) {
                        let before = s.user_ids.len();
                        s.discover(other);
                        if s.user_ids.len() > before {
                            s.queue.push_back(other);
                        }
                    }
                    // push the record and (maybe) snapshot while holding
                    // the frontier lock: a checkpoint must see every user
                    // either fully recorded or in the frontier, never
                    // half-crawled
                    let mut collected = ctx.collected.lock();
                    collected.push(record);
                    if self.config.checkpoint_every.is_some_and(|k| collected.len() % k == 0) {
                        let cp = self.snapshot(&s, &collected, ctx.clock.now());
                        ctx.snapshots.lock().push(cp);
                    }
                    drop(collected);
                }
                Err(e) => {
                    if e.is_retryable() {
                        s.dead_letters.push(user);
                    } else {
                        s.failed.push(user);
                    }
                }
            }
            ctx.work_ready.notify_all();
        }
    }

    /// A coherent snapshot of the crawl, taken under the frontier lock.
    /// In-flight users roll back into the frontier (and out of `started`,
    /// so resume re-counts them against the budget).
    fn snapshot(&self, s: &Shared, collected: &[CrawledRecord], clock: u64) -> CrawlCheckpoint {
        self.registry.counter("crawler.checkpoint.taken_count").inc();
        self.registry
            .histogram("crawler.checkpoint.records_count")
            .observe(collected.len() as u64);
        self.registry
            .histogram("crawler.checkpoint.frontier_count")
            .observe((s.in_flight.len() + s.queue.len()) as u64);
        CrawlCheckpoint {
            version: CHECKPOINT_VERSION,
            config: self.config.clone(),
            clock,
            user_ids: s.user_ids.clone(),
            frontier: s.in_flight.iter().chain(s.queue.iter()).copied().collect(),
            dead_letters: s.dead_letters.clone(),
            sweeps_left: s.sweeps_left,
            started: s.started.saturating_sub(s.in_flight.len()),
            dropped_on_budget: s.dropped_on_budget,
            requeues: s.requeues,
            sweep_rounds: s.sweep_rounds,
            failed: s.failed.clone(),
            records: collected.to_vec(),
        }
    }

    /// Fetches one user's profile and both circle lists, with every
    /// request under the retry policy on the simulated clock.
    fn crawl_user<S: SocialApi>(
        &self,
        service: &S,
        clock: &SimClock,
        user: u64,
    ) -> Result<CrawledRecord, FetchError> {
        let policy: &RetryPolicy = &self.config.retry;
        let mut counters = RetryCounters::default();

        let page =
            policy.execute(clock, user, &mut counters, || service.fetch_profile(user))?;

        let mut record = CrawledRecord {
            private: page.lists_private,
            page,
            in_list: Vec::new(),
            out_list: Vec::new(),
            truncated_in: false,
            truncated_out: false,
            retries: 0,
            transient: 0,
            rate_limited: 0,
            backoff_ticks: 0,
        };

        if !record.private {
            for direction in [Direction::InCircles, Direction::OutCircles] {
                let mut page_no = 0usize;
                loop {
                    if let Some(cap) = self.config.max_pages_per_list {
                        if page_no >= cap {
                            break;
                        }
                    }
                    let result = policy.execute(clock, user, &mut counters, || {
                        service.fetch_circle_page(user, direction, page_no)
                    });
                    let circle = match result {
                        Ok(c) => c,
                        // a list can flip private between requests only in
                        // adversarial tests; treat it as end-of-list
                        Err(FetchError::PrivateList) => break,
                        Err(e) => return Err(e),
                    };
                    match direction {
                        Direction::InCircles => {
                            record.in_list.extend_from_slice(&circle.users);
                            record.truncated_in |= circle.truncated;
                        }
                        Direction::OutCircles => {
                            record.out_list.extend_from_slice(&circle.users);
                            record.truncated_out |= circle.truncated;
                        }
                    }
                    if !circle.has_more {
                        break;
                    }
                    page_no += 1;
                }
            }
        }

        record.retries = counters.retries;
        record.transient = counters.transient;
        record.rate_limited = counters.rate_limited;
        record.backoff_ticks = counters.backoff_ticks;
        Ok(record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gplus_service::{FaultPlan, GooglePlusService, ServiceConfig};
    use gplus_synth::{SynthConfig, SynthNetwork};

    fn quiet_service(n: usize, seed: u64) -> GooglePlusService {
        let net = SynthNetwork::generate(&SynthConfig::google_plus_2011(n, seed));
        GooglePlusService::new(
            net,
            ServiceConfig {
                failure_rate: 0.0,
                private_list_fraction: 0.0,
                ..Default::default()
            },
        )
    }

    #[test]
    fn full_crawl_recovers_reachable_graph() {
        let svc = quiet_service(2_000, 21);
        let result = Crawler::paper_setup().run(&svc);
        let cov = result.coverage(&svc.ground_truth().graph);
        // bidirectional BFS from one seed reaches the whole WCC of the
        // seed; the synthetic graph is almost one WCC
        assert!(cov.node_coverage > 0.95, "node coverage {}", cov.node_coverage);
        assert!(cov.edge_coverage > 0.95, "edge coverage {}", cov.edge_coverage);
    }

    #[test]
    fn crawl_with_failures_still_converges() {
        let net = SynthNetwork::generate(&SynthConfig::google_plus_2011(1_500, 22));
        let svc = GooglePlusService::new(
            net,
            ServiceConfig {
                failure_rate: 0.2,
                private_list_fraction: 0.0,
                ..Default::default()
            },
        );
        let result = Crawler::paper_setup().run(&svc);
        assert!(result.stats.transient_errors > 0, "failures should have occurred");
        assert!(result.stats.backoff_ticks > 0, "retries must have backed off");
        assert_eq!(
            result.stats.sim_ticks, result.stats.backoff_ticks,
            "all simulated time comes from backoff"
        );
        let cov = result.coverage(&svc.ground_truth().graph);
        assert!(cov.node_coverage > 0.9, "node coverage {}", cov.node_coverage);
    }

    #[test]
    fn private_lists_recovered_from_other_side() {
        let net = SynthNetwork::generate(&SynthConfig::google_plus_2011(1_500, 23));
        let svc = GooglePlusService::new(
            net,
            ServiceConfig {
                failure_rate: 0.0,
                private_list_fraction: 0.10,
                ..Default::default()
            },
        );
        let result = Crawler::paper_setup().run(&svc);
        assert!(result.stats.private_list_users > 0);
        // an edge u->v where u is private is still recoverable from v's
        // in-list: overall edge coverage stays high (only edges where BOTH
        // endpoints are private vanish)
        let cov = result.coverage(&svc.ground_truth().graph);
        assert!(cov.edge_coverage > 0.95, "edge coverage {}", cov.edge_coverage);
    }

    #[test]
    fn budget_limits_profiles_crawled() {
        let svc = quiet_service(2_000, 24);
        let crawler =
            Crawler::new(CrawlerConfig { max_profiles: Some(100), ..CrawlerConfig::default() });
        let result = crawler.run(&svc);
        assert!(result.crawled_count() <= 100, "crawled {}", result.crawled_count());
        assert!(result.crawled_count() >= 50);
        // discovered exceeds crawled, as in the paper (35.1M vs 27.5M)
        assert!(result.discovered_count() > result.crawled_count());
        // the user popped when the budget tripped is counted, not silently
        // dropped
        assert!(result.stats.dropped_on_budget >= 1, "budget trip must be visible in stats");
    }

    #[test]
    fn single_machine_is_deterministic() {
        let run = |seed| {
            let svc = quiet_service(800, seed);
            let crawler = Crawler::new(CrawlerConfig { machines: 1, ..Default::default() });
            let r = crawler.run(&svc);
            (r.user_ids.clone(), r.graph.edge_count(), r.stats.clone())
        };
        assert_eq!(run(31), run(31));
    }

    #[test]
    fn machine_count_does_not_change_the_graph() {
        let svc = quiet_service(1_200, 25);
        let one = Crawler::new(CrawlerConfig { machines: 1, ..Default::default() }).run(&svc);
        let many = Crawler::new(CrawlerConfig { machines: 8, ..Default::default() }).run(&svc);
        assert_eq!(one.discovered_count(), many.discovered_count());
        assert_eq!(one.graph.edge_count(), many.graph.edge_count());
        // same edge set under the user-id mapping
        let canon = |r: &CrawlResult| {
            let mut edges: Vec<(u64, u64)> =
                r.graph.edges().map(|(a, b)| (r.user_of(a), r.user_of(b))).collect();
            edges.sort_unstable();
            edges
        };
        assert_eq!(canon(&one), canon(&many));
    }

    #[test]
    fn truncation_detected_and_counted() {
        let net = SynthNetwork::generate(&SynthConfig::google_plus_2011(3_000, 26));
        let svc = GooglePlusService::new(
            net,
            ServiceConfig {
                failure_rate: 0.0,
                private_list_fraction: 0.0,
                circle_list_limit: 100,
                page_size: 50,
                ..Default::default()
            },
        );
        let result = Crawler::paper_setup().run(&svc);
        assert!(
            result.stats.truncated_in_lists > 0,
            "celebrities should exceed a 100-entry cap"
        );
    }

    #[test]
    fn seed_is_first_discovered() {
        let svc = quiet_service(800, 27);
        let result = Crawler::paper_setup().run(&svc);
        assert_eq!(result.user_of(0), 1, "Mark Zuckerberg (user 1) is the seed");
    }

    #[test]
    fn dead_letter_sweep_recovers_outage_victims() {
        // an outage long enough to exhaust a user's transient budget sends
        // it to the dead-letter queue; the sweep re-crawls it after the
        // outage lifted, so coverage stays complete
        let net = SynthNetwork::generate(&SynthConfig::google_plus_2011(800, 28));
        let retry = RetryPolicy { transient_attempts: 3, ..RetryPolicy::default() };
        let svc = GooglePlusService::new(
            net,
            ServiceConfig {
                failure_rate: 0.0,
                private_list_fraction: 0.0,
                fault_plan: FaultPlan::none().with_outage(200, 40),
                ..Default::default()
            },
        );
        let crawler = Crawler::new(CrawlerConfig { retry, ..CrawlerConfig::default() });
        let result = crawler.run(&svc);
        assert!(
            result.stats.dead_letter_requeues > 0,
            "the outage should have dead-lettered someone"
        );
        assert_eq!(result.stats.failed_profiles, 0, "sweeps should recover everyone");
        let cov = result.coverage(&svc.ground_truth().graph);
        assert!(cov.node_coverage > 0.95, "node coverage {}", cov.node_coverage);
    }

    #[test]
    fn permanently_failing_user_lands_in_failed_after_sweeps() {
        let net = SynthNetwork::generate(&SynthConfig::google_plus_2011(600, 29));
        // user 2 is an early celebrity: reachable, and permafailed
        let retry = RetryPolicy { transient_attempts: 2, ..RetryPolicy::default() };
        let svc = GooglePlusService::new(
            net,
            ServiceConfig {
                failure_rate: 0.0,
                private_list_fraction: 0.0,
                fault_plan: FaultPlan::none().with_permafail_users([2]),
                ..Default::default()
            },
        );
        let crawler = Crawler::new(CrawlerConfig {
            retry,
            dead_letter_sweeps: 2,
            ..CrawlerConfig::default()
        });
        let result = crawler.run(&svc);
        assert_eq!(result.stats.failed_profiles, 1);
        // one initial crawl + two sweeps = two requeues
        assert_eq!(result.stats.dead_letter_requeues, 2);
        assert_eq!(result.stats.sweep_rounds, 2);
        assert!(result.node_of(2).is_some(), "the user is discovered, just not crawled");
        assert!(!result.pages.contains_key(&result.node_of(2).unwrap()));
    }

    #[test]
    fn metrics_mirror_crawl_stats() {
        let net = SynthNetwork::generate(&SynthConfig::google_plus_2011(800, 34));
        let svc = GooglePlusService::new(
            net,
            ServiceConfig {
                failure_rate: 0.15,
                private_list_fraction: 0.0,
                ..Default::default()
            },
        );
        let registry = Arc::new(Registry::new());
        let crawler = Crawler::with_registry(CrawlerConfig::default(), Arc::clone(&registry));
        let result = crawler.run(&svc);
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter("crawler.profiles_crawled_count"),
            result.stats.profiles_crawled
        );
        assert_eq!(
            snap.counter("crawler.retry.transient_count"),
            result.stats.transient_errors
        );
        assert_eq!(snap.counter("crawler.retry.backoff_ticks"), result.stats.backoff_ticks);
        // the per-user backoff histogram aggregates to the same totals
        let hist = &snap.histograms["crawler.retry.backoff_per_user_ticks"];
        assert_eq!(hist.count, result.stats.profiles_crawled);
        assert_eq!(hist.sum, result.stats.backoff_ticks);
    }

    #[test]
    fn checkpoints_are_taken_at_cadence() {
        let svc = quiet_service(800, 30);
        let crawler = Crawler::new(CrawlerConfig {
            checkpoint_every: Some(50),
            ..CrawlerConfig::default()
        });
        let (result, snapshots) = crawler.run_checkpointed(&svc);
        let expected = result.crawled_count() / 50;
        assert_eq!(snapshots.len(), expected, "one snapshot per 50 profiles");
        for cp in &snapshots {
            assert_eq!(cp.version, CHECKPOINT_VERSION);
            // coherence: recorded + pending covers every discovered user
            // that is not failed
            assert!(
                cp.crawled_count() + cp.pending_count() + cp.failed.len() <= cp.user_ids.len()
            );
        }
    }

    #[test]
    fn resume_from_checkpoint_converges_to_uninterrupted_graph() {
        let canon = |r: &CrawlResult| {
            let mut edges: Vec<(u64, u64)> =
                r.graph.edges().map(|(a, b)| (r.user_of(a), r.user_of(b))).collect();
            edges.sort_unstable();
            edges
        };
        let uninterrupted = Crawler::paper_setup().run(&quiet_service(800, 32));
        let crawler = Crawler::new(CrawlerConfig {
            checkpoint_every: Some(100),
            ..CrawlerConfig::default()
        });
        let (_, snapshots) = crawler.run_checkpointed(&quiet_service(800, 32));
        assert!(!snapshots.is_empty(), "test premise: at least one checkpoint");
        // "kill" the crawl at the first checkpoint, restart on a fresh
        // service (the crawler process died; the service did not lose the
        // social graph)
        let resumed = Crawler::resume(&quiet_service(800, 32), &snapshots[0]);
        assert_eq!(canon(&resumed), canon(&uninterrupted));
        assert_eq!(resumed.stats.profiles_crawled, uninterrupted.stats.profiles_crawled);
    }

    #[test]
    fn resume_restores_clock_and_counters() {
        let net = SynthNetwork::generate(&SynthConfig::google_plus_2011(600, 33));
        let svc = GooglePlusService::new(
            net,
            ServiceConfig {
                failure_rate: 0.15,
                private_list_fraction: 0.0,
                ..Default::default()
            },
        );
        let crawler = Crawler::new(CrawlerConfig {
            checkpoint_every: Some(40),
            ..CrawlerConfig::default()
        });
        let (_, snapshots) = crawler.run_checkpointed(&svc);
        assert!(!snapshots.is_empty());
        let cp = &snapshots[0];
        let resumed = Crawler::resume(&svc, cp);
        assert!(
            resumed.stats.sim_ticks >= cp.clock,
            "resumed clock starts where the checkpoint left off"
        );
    }
}
