//! The multi-worker bidirectional BFS crawl.

use crate::config::CrawlerConfig;
use crate::result::{CrawlResult, CrawlStats};
use gplus_graph::GraphBuilder;
use gplus_service::{Direction, FetchError, ProfilePage, SocialApi};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};

/// The crawler. Holds only configuration; all run state lives on the
/// stack of [`Crawler::run`], so one crawler can run multiple crawls.
#[derive(Debug, Clone)]
pub struct Crawler {
    config: CrawlerConfig,
}

/// What one worker collected for one user.
struct CrawledUser {
    page: ProfilePage,
    in_list: Vec<u64>,
    out_list: Vec<u64>,
    truncated_in: bool,
    truncated_out: bool,
    private: bool,
    retries: u64,
    transient: u64,
    rate_limited: u64,
}

/// Frontier and bookkeeping shared between workers.
struct Shared {
    queue: VecDeque<u64>,
    discovered: HashMap<u64, u32>,
    user_ids: Vec<u64>,
    in_flight: usize,
    started: usize,
    stop: bool,
}

impl Shared {
    fn discover(&mut self, user: u64) -> u32 {
        match self.discovered.get(&user) {
            Some(&id) => id,
            None => {
                let id = self.user_ids.len() as u32;
                self.user_ids.push(user);
                self.discovered.insert(user, id);
                id
            }
        }
    }
}

impl Crawler {
    /// Creates a crawler.
    ///
    /// # Panics
    /// Panics if the configuration is invalid.
    pub fn new(config: CrawlerConfig) -> Self {
        config.validate();
        Self { config }
    }

    /// The paper's setup: single seed (node 1 = Mark Zuckerberg), 11
    /// machines, crawl to exhaustion.
    pub fn paper_setup() -> Self {
        Self::new(CrawlerConfig::default())
    }

    /// Runs a full crawl against any [`SocialApi`] transport.
    pub fn run<S: SocialApi>(&self, service: &S) -> CrawlResult {
        let shared = Mutex::new(Shared {
            queue: VecDeque::new(),
            discovered: HashMap::new(),
            user_ids: Vec::new(),
            in_flight: 0,
            started: 0,
            stop: false,
        });
        let work_ready = Condvar::new();
        {
            let mut s = shared.lock();
            for &seed in &self.config.seeds {
                s.discover(seed);
                s.queue.push_back(seed);
            }
        }

        let collected: Mutex<Vec<CrawledUser>> = Mutex::new(Vec::new());
        let failed: Mutex<Vec<u64>> = Mutex::new(Vec::new());

        std::thread::scope(|scope| {
            for _ in 0..self.config.machines {
                scope.spawn(|| self.worker(service, &shared, &work_ready, &collected, &failed));
            }
        });

        // --- assemble the result ---
        let shared = shared.into_inner();
        let collected = collected.into_inner();
        let failed = failed.into_inner();

        // users_discovered is set after interning: failed profiles' list
        // entries can add users beyond what the workers saw
        let mut stats =
            CrawlStats { failed_profiles: failed.len() as u64, ..CrawlStats::default() };

        // The graph covers every discovered user; edges come from both
        // directions of every crawled user's lists.
        let mut index = shared.discovered;
        let mut user_ids = shared.user_ids;
        let mut builder = GraphBuilder::new();
        let mut pages: HashMap<u32, ProfilePage> = HashMap::with_capacity(collected.len());
        let intern = |user: u64, index: &mut HashMap<u64, u32>, user_ids: &mut Vec<u64>| {
            *index.entry(user).or_insert_with(|| {
                let id = user_ids.len() as u32;
                user_ids.push(user);
                id
            })
        };
        for item in collected {
            let u = intern(item.page.user_id, &mut index, &mut user_ids);
            stats.profiles_crawled += 1;
            stats.retries += item.retries;
            stats.transient_errors += item.transient;
            stats.rate_limited += item.rate_limited;
            if item.private {
                stats.private_list_users += 1;
            }
            if item.truncated_in {
                stats.truncated_in_lists += 1;
            }
            if item.truncated_out {
                stats.truncated_out_lists += 1;
            }
            for follower in item.in_list {
                let f = intern(follower, &mut index, &mut user_ids);
                builder.add_edge(f, u);
                stats.raw_edges += 1;
            }
            for followee in item.out_list {
                let f = intern(followee, &mut index, &mut user_ids);
                builder.add_edge(u, f);
                stats.raw_edges += 1;
            }
            pages.insert(u, item.page);
        }
        stats.users_discovered = user_ids.len() as u64;
        builder.ensure_nodes(user_ids.len());
        let graph = builder.build();

        CrawlResult { user_ids, index, graph, pages, stats }
    }

    fn worker<S: SocialApi>(
        &self,
        service: &S,
        shared: &Mutex<Shared>,
        work_ready: &Condvar,
        collected: &Mutex<Vec<CrawledUser>>,
        failed: &Mutex<Vec<u64>>,
    ) {
        loop {
            // --- acquire a user to crawl ---
            let user = {
                let mut s = shared.lock();
                loop {
                    if s.stop {
                        return;
                    }
                    if let Some(u) = s.queue.pop_front() {
                        if let Some(budget) = self.config.max_profiles {
                            if s.started >= budget {
                                s.stop = true;
                                work_ready.notify_all();
                                return;
                            }
                        }
                        s.started += 1;
                        s.in_flight += 1;
                        break u;
                    }
                    if s.in_flight == 0 {
                        // frontier exhausted and nobody can refill it
                        work_ready.notify_all();
                        return;
                    }
                    work_ready.wait(&mut s);
                }
            };

            // --- crawl the user (no locks held) ---
            let outcome = self.crawl_user(service, user);

            // --- publish results and refill the frontier ---
            match outcome {
                Ok(item) => {
                    let mut s = shared.lock();
                    for &other in item.in_list.iter().chain(&item.out_list) {
                        let before = s.user_ids.len();
                        s.discover(other);
                        if s.user_ids.len() > before {
                            s.queue.push_back(other);
                        }
                    }
                    s.in_flight -= 1;
                    work_ready.notify_all();
                    drop(s);
                    collected.lock().push(item);
                }
                Err(_) => {
                    let mut s = shared.lock();
                    s.in_flight -= 1;
                    work_ready.notify_all();
                    drop(s);
                    failed.lock().push(user);
                }
            }
        }
    }

    /// Fetches one user's profile and both circle lists, with retries.
    fn crawl_user<S: SocialApi>(
        &self,
        service: &S,
        user: u64,
    ) -> Result<CrawledUser, FetchError> {
        let mut retries = 0u64;
        let mut transient = 0u64;
        let mut rate_limited = 0u64;

        let page =
            self.with_retries(&mut retries, &mut transient, &mut rate_limited, || {
                service.fetch_profile(user)
            })?;

        let mut item = CrawledUser {
            private: page.lists_private,
            page,
            in_list: Vec::new(),
            out_list: Vec::new(),
            truncated_in: false,
            truncated_out: false,
            retries: 0,
            transient: 0,
            rate_limited: 0,
        };

        if !item.private {
            for direction in [Direction::InCircles, Direction::OutCircles] {
                let mut page_no = 0usize;
                loop {
                    if let Some(cap) = self.config.max_pages_per_list {
                        if page_no >= cap {
                            break;
                        }
                    }
                    let result = self.with_retries(
                        &mut retries,
                        &mut transient,
                        &mut rate_limited,
                        || service.fetch_circle_page(user, direction, page_no),
                    );
                    let circle = match result {
                        Ok(c) => c,
                        // a list can flip private between requests only in
                        // adversarial tests; treat it as end-of-list
                        Err(FetchError::PrivateList) => break,
                        Err(e) => return Err(e),
                    };
                    match direction {
                        Direction::InCircles => {
                            item.in_list.extend_from_slice(&circle.users);
                            item.truncated_in |= circle.truncated;
                        }
                        Direction::OutCircles => {
                            item.out_list.extend_from_slice(&circle.users);
                            item.truncated_out |= circle.truncated;
                        }
                    }
                    if !circle.has_more {
                        break;
                    }
                    page_no += 1;
                }
            }
        }

        item.retries = retries;
        item.transient = transient;
        item.rate_limited = rate_limited;
        Ok(item)
    }

    /// Runs `attempt` up to `max_retries` times. Always makes at least one
    /// attempt, even if a caller bypassed [`CrawlerConfig::validate`] with
    /// `max_retries: 0` — the returned error must come from the service,
    /// never be fabricated here.
    fn with_retries<T>(
        &self,
        retries: &mut u64,
        transient: &mut u64,
        rate_limited: &mut u64,
        mut attempt: impl FnMut() -> Result<T, FetchError>,
    ) -> Result<T, FetchError> {
        let attempts = self.config.max_retries.max(1);
        let mut last = FetchError::Transient;
        for try_no in 0..attempts {
            match attempt() {
                Ok(v) => return Ok(v),
                Err(e @ FetchError::Transient) => {
                    *transient += 1;
                    last = e;
                }
                Err(e @ FetchError::RateLimited) => {
                    *rate_limited += 1;
                    // a real crawler sleeps here; in simulated time, the
                    // retry itself advances the clock
                    last = e;
                    std::thread::yield_now();
                }
                Err(e) => return Err(e),
            }
            if try_no + 1 < attempts {
                *retries += 1;
            }
        }
        Err(last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gplus_service::{GooglePlusService, ServiceConfig};
    use gplus_synth::{SynthConfig, SynthNetwork};

    fn quiet_service(n: usize, seed: u64) -> GooglePlusService {
        let net = SynthNetwork::generate(&SynthConfig::google_plus_2011(n, seed));
        GooglePlusService::new(
            net,
            ServiceConfig {
                failure_rate: 0.0,
                private_list_fraction: 0.0,
                ..Default::default()
            },
        )
    }

    #[test]
    fn full_crawl_recovers_reachable_graph() {
        let svc = quiet_service(2_000, 21);
        let result = Crawler::paper_setup().run(&svc);
        let cov = result.coverage(&svc.ground_truth().graph);
        // bidirectional BFS from one seed reaches the whole WCC of the
        // seed; the synthetic graph is almost one WCC
        assert!(cov.node_coverage > 0.95, "node coverage {}", cov.node_coverage);
        assert!(cov.edge_coverage > 0.95, "edge coverage {}", cov.edge_coverage);
    }

    #[test]
    fn crawl_with_failures_still_converges() {
        let net = SynthNetwork::generate(&SynthConfig::google_plus_2011(1_500, 22));
        let svc = GooglePlusService::new(
            net,
            ServiceConfig {
                failure_rate: 0.2,
                private_list_fraction: 0.0,
                ..Default::default()
            },
        );
        let result = Crawler::paper_setup().run(&svc);
        assert!(result.stats.transient_errors > 0, "failures should have occurred");
        let cov = result.coverage(&svc.ground_truth().graph);
        assert!(cov.node_coverage > 0.9, "node coverage {}", cov.node_coverage);
    }

    #[test]
    fn private_lists_recovered_from_other_side() {
        let net = SynthNetwork::generate(&SynthConfig::google_plus_2011(1_500, 23));
        let svc = GooglePlusService::new(
            net,
            ServiceConfig {
                failure_rate: 0.0,
                private_list_fraction: 0.10,
                ..Default::default()
            },
        );
        let result = Crawler::paper_setup().run(&svc);
        assert!(result.stats.private_list_users > 0);
        // an edge u->v where u is private is still recoverable from v's
        // in-list: overall edge coverage stays high (only edges where BOTH
        // endpoints are private vanish)
        let cov = result.coverage(&svc.ground_truth().graph);
        assert!(cov.edge_coverage > 0.95, "edge coverage {}", cov.edge_coverage);
    }

    #[test]
    fn budget_limits_profiles_crawled() {
        let svc = quiet_service(2_000, 24);
        let crawler =
            Crawler::new(CrawlerConfig { max_profiles: Some(100), ..CrawlerConfig::default() });
        let result = crawler.run(&svc);
        // workers in flight when the budget trips may add a handful over
        assert!(result.crawled_count() <= 100 + 11, "crawled {}", result.crawled_count());
        assert!(result.crawled_count() >= 50);
        // discovered exceeds crawled, as in the paper (35.1M vs 27.5M)
        assert!(result.discovered_count() > result.crawled_count());
    }

    #[test]
    fn single_machine_is_deterministic() {
        let run = |seed| {
            let svc = quiet_service(800, seed);
            let crawler = Crawler::new(CrawlerConfig { machines: 1, ..Default::default() });
            let r = crawler.run(&svc);
            (r.user_ids.clone(), r.graph.edge_count())
        };
        assert_eq!(run(31), run(31));
    }

    #[test]
    fn machine_count_does_not_change_the_graph() {
        let svc = quiet_service(1_200, 25);
        let one = Crawler::new(CrawlerConfig { machines: 1, ..Default::default() }).run(&svc);
        let many = Crawler::new(CrawlerConfig { machines: 8, ..Default::default() }).run(&svc);
        assert_eq!(one.discovered_count(), many.discovered_count());
        assert_eq!(one.graph.edge_count(), many.graph.edge_count());
        // same edge set under the user-id mapping
        let canon = |r: &CrawlResult| {
            let mut edges: Vec<(u64, u64)> =
                r.graph.edges().map(|(a, b)| (r.user_of(a), r.user_of(b))).collect();
            edges.sort_unstable();
            edges
        };
        assert_eq!(canon(&one), canon(&many));
    }

    #[test]
    fn truncation_detected_and_counted() {
        let net = SynthNetwork::generate(&SynthConfig::google_plus_2011(3_000, 26));
        let svc = GooglePlusService::new(
            net,
            ServiceConfig {
                failure_rate: 0.0,
                private_list_fraction: 0.0,
                circle_list_limit: 100,
                page_size: 50,
                ..Default::default()
            },
        );
        let result = Crawler::paper_setup().run(&svc);
        assert!(
            result.stats.truncated_in_lists > 0,
            "celebrities should exceed a 100-entry cap"
        );
    }

    #[test]
    fn with_retries_always_attempts_at_least_once() {
        // regression: with max_retries == 0 (validate bypassed by direct
        // construction), with_retries used to skip the loop entirely and
        // return a fabricated Transient error without calling the service
        for max_retries in [0usize, 1] {
            let crawler =
                Crawler { config: CrawlerConfig { max_retries, ..Default::default() } };
            let (mut r, mut t, mut rl) = (0u64, 0u64, 0u64);
            let mut calls = 0u32;
            let result = crawler.with_retries(&mut r, &mut t, &mut rl, || {
                calls += 1;
                Ok::<u32, FetchError>(7)
            });
            assert_eq!(result, Ok(7), "max_retries={max_retries}");
            assert_eq!(calls, 1, "exactly one attempt for max_retries={max_retries}");
            assert_eq!(r, 0, "a lone attempt is not a retry");
        }
    }

    #[test]
    fn with_retries_error_comes_from_the_service() {
        let crawler =
            Crawler { config: CrawlerConfig { max_retries: 0, ..Default::default() } };
        let (mut r, mut t, mut rl) = (0u64, 0u64, 0u64);
        let mut calls = 0u32;
        let result: Result<u32, FetchError> =
            crawler.with_retries(&mut r, &mut t, &mut rl, || {
                calls += 1;
                Err(FetchError::RateLimited)
            });
        assert_eq!(calls, 1, "the service must be consulted before failing");
        assert_eq!(result, Err(FetchError::RateLimited));
        assert_eq!(rl, 1);
    }

    #[test]
    fn seed_is_first_discovered() {
        let svc = quiet_service(800, 27);
        let result = Crawler::paper_setup().run(&svc);
        assert_eq!(result.user_of(0), 1, "Mark Zuckerberg (user 1) is the seed");
    }
}
