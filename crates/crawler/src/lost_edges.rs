//! The §2.2 lost-edge estimator.
//!
//! "In our dataset there are 915 users with more than 10,000 in-circles
//! users, which should have 37,185,272 incoming edges according to their
//! profile pages, while we found 27,600,503 links for those users in our
//! graph. By dividing the difference of these numbers by the total number
//! of edges, we estimate that 1.6% of the edges are lost because of the
//! 10,000 limit on the circle list."

use crate::result::CrawlResult;
use serde::{Deserialize, Serialize};

/// Output of the estimator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LostEdgeEstimate {
    /// Users whose declared follower count exceeds the circle-list limit
    /// (the paper's 915).
    pub truncated_users: u64,
    /// Sum of declared follower counts over those users (37,185,272).
    pub declared_in_sum: u64,
    /// In-edges actually collected for those users (27,600,503).
    pub collected_in_sum: u64,
    /// Sum over truncated users of `max(declared - collected, 0)`. Clamped
    /// per user: one over-recovered user (bidirectional recovery can push
    /// collected above declared) must not mask another user's losses.
    pub lost_edges: u64,
    /// Lost edges divided by total collected edges (the paper's 1.6%).
    pub lost_fraction: f64,
}

/// Runs the estimator over a crawl result, given the circle-list limit the
/// service enforces.
pub fn estimate(result: &CrawlResult, circle_list_limit: u64) -> LostEdgeEstimate {
    let mut truncated_users = 0u64;
    let mut declared_in_sum = 0u64;
    let mut collected_in_sum = 0u64;
    let mut lost_edges = 0u64;
    for (&node, page) in &result.pages {
        if page.declared_in_count > circle_list_limit {
            truncated_users += 1;
            let collected = result.graph.in_degree(node) as u64;
            declared_in_sum += page.declared_in_count;
            collected_in_sum += collected;
            // clamp per user: bidirectional recovery can push one user's
            // collected count above their declared count (followers'
            // out-lists refill the gap), and that surplus must not offset
            // edges genuinely lost on other users
            lost_edges += page.declared_in_count.saturating_sub(collected);
        }
    }
    let total_edges = result.graph.edge_count() as u64;
    LostEdgeEstimate {
        truncated_users,
        declared_in_sum,
        collected_in_sum,
        lost_edges,
        lost_fraction: if total_edges == 0 {
            0.0
        } else {
            lost_edges as f64 / total_edges as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CrawlerConfig;
    use crate::crawl::Crawler;
    use gplus_service::{GooglePlusService, ServiceConfig};
    use gplus_synth::{SynthConfig, SynthNetwork};

    fn crawl_with_limit(limit: usize, private_fraction: f64) -> (CrawlResult, u64) {
        let net = SynthNetwork::generate(&SynthConfig::google_plus_2011(3_000, 99));
        let svc = GooglePlusService::new(
            net,
            ServiceConfig {
                failure_rate: 0.0,
                private_list_fraction: private_fraction,
                circle_list_limit: limit,
                page_size: limit.min(1_000),
                ..Default::default()
            },
        );
        let result = Crawler::new(CrawlerConfig::default()).run(&svc);
        (result, limit as u64)
    }

    #[test]
    fn no_truncation_no_loss() {
        let (result, limit) = crawl_with_limit(1_000_000, 0.0);
        let est = estimate(&result, limit);
        assert_eq!(est.truncated_users, 0);
        assert_eq!(est.lost_edges, 0);
        assert_eq!(est.lost_fraction, 0.0);
    }

    #[test]
    fn tight_limit_shows_losses() {
        // Losses require followers whose own out-lists are unavailable —
        // with every list public the bidirectional crawl recovers all
        // truncated edges from the other side. 30% private lists mirrors
        // the paper's situation (44% of users never crawled).
        let (result, limit) = crawl_with_limit(100, 0.30);
        let est = estimate(&result, limit);
        assert!(est.truncated_users > 0, "celebrities exceed a 100-entry cap");
        assert!(
            est.declared_in_sum > est.collected_in_sum,
            "declared {} vs collected {}",
            est.declared_in_sum,
            est.collected_in_sum
        );
        assert!(est.lost_fraction > 0.0);
        assert!(est.lost_fraction < 1.0);
    }

    #[test]
    fn fully_public_crawl_recovers_truncated_edges() {
        // the flip side: with every list public, bidirectional recovery is
        // complete and the estimator reports (near-)zero loss
        let (result, limit) = crawl_with_limit(100, 0.0);
        let est = estimate(&result, limit);
        assert!(est.truncated_users > 0);
        assert!(
            est.lost_fraction < 0.01,
            "public lists should recover nearly everything, lost {}",
            est.lost_fraction
        );
    }

    #[test]
    fn bidirectional_recovery_reduces_the_estimate() {
        // The estimator measures edges missing from the *graph*, which the
        // bidirectional crawl partially recovers from followers' out-lists.
        // So collected_in_sum must exceed truncated_users * limit — the
        // naive one-directional floor.
        let (result, limit) = crawl_with_limit(100, 0.30);
        let est = estimate(&result, limit);
        assert!(
            est.collected_in_sum > est.truncated_users * limit,
            "bidirectional recovery should beat the truncation floor: {} vs {}",
            est.collected_in_sum,
            est.truncated_users * limit
        );
    }

    #[test]
    fn per_user_clamp_keeps_over_recovery_from_masking_losses() {
        // Hand-built crawl: two truncated users under a limit of 10.
        //  node 0: declares 25 followers, graph holds 5  -> 20 edges lost
        //  node 1: declares 15 followers, graph holds 18 -> over-recovered
        //          (bidirectional recovery), 0 edges lost
        // The aggregate-clamp bug summed first (40 declared vs 23
        // collected) and reported 17; per-user clamping reports 20.
        use gplus_graph::GraphBuilder;
        use gplus_service::ProfilePage;
        use std::collections::HashMap;

        let page = |user_id: u64, declared_in_count: u64| ProfilePage {
            user_id,
            display_name: format!("user {user_id}"),
            public_attributes: Vec::new(),
            gender: None,
            relationship: None,
            occupation: None,
            looking_for: None,
            country: None,
            location: None,
            places_lived_text: None,
            declared_in_count,
            declared_out_count: 0,
            lists_private: false,
        };

        let mut builder = GraphBuilder::new();
        let mut next_source = 2u32;
        for (target, in_degree) in [(0u32, 5u32), (1, 18)] {
            for _ in 0..in_degree {
                builder.add_edge(next_source, target);
                next_source += 1;
            }
        }
        builder.ensure_nodes(next_source as usize);
        let graph = builder.build();

        let user_ids: Vec<u64> = (0..next_source as u64).collect();
        let index: HashMap<u64, u32> = user_ids.iter().map(|&u| (u, u as u32)).collect();
        let pages: HashMap<u32, ProfilePage> =
            [(0u32, page(0, 25)), (1, page(1, 15))].into_iter().collect();
        let result = CrawlResult { user_ids, index, graph, pages, stats: Default::default() };

        let est = estimate(&result, 10);
        assert_eq!(est.truncated_users, 2);
        assert_eq!(est.declared_in_sum, 40);
        assert_eq!(est.collected_in_sum, 23);
        assert_eq!(est.lost_edges, 20, "per-user clamp: 20 lost, not 40 - 23 = 17");
        assert!((est.lost_fraction - 20.0 / 23.0).abs() < 1e-12);
    }

    #[test]
    fn estimator_matches_paper_arithmetic() {
        // plug the paper's published numbers through the same formula
        let declared: u64 = 37_185_272;
        let collected: u64 = 27_600_503;
        let total: u64 = 575_141_097;
        let fraction = (declared - collected) as f64 / total as f64;
        assert!((fraction - 0.0167).abs() < 0.001, "paper arithmetic gives {fraction}");
    }
}
