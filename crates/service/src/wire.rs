//! Length-delimited wire protocol for the service API.
//!
//! The paper's crawler spoke HTTP to Google's frontend; our in-process
//! simulation normally short-circuits that. This module restores the
//! network boundary as a byte protocol: requests and responses serialise
//! into length-delimited JSON frames (the framing pattern from the Tokio
//! tutorial, minus the async runtime — the transport here is any
//! `Read`/`Write` pair or an in-memory buffer). [`WireService`] wraps a
//! [`GooglePlusService`] behind an encode→decode round trip, so tests can
//! prove the protocol carries the entire API faithfully.
//!
//! Frame layout: `u32` big-endian payload length, then the JSON payload.
//! JSON keeps the frames debuggable; the framing machinery (buffering,
//! partial reads, length checks) is what a binary protocol would need too.

use crate::error::FetchError;
use crate::failure::splitmix64;
use crate::page::{CirclePage, Direction, ProfilePage};
use crate::query::{QueryError, QueryRequest, QueryResponse};
use crate::service::{GooglePlusService, SocialApi};
use bytes::{Buf, BufMut, BytesMut};
use gplus_obs::{Counter, Histogram};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Maximum accepted frame payload (guards against corrupt lengths).
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// A request frame.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Request {
    /// Fetch a profile page.
    Profile {
        /// Target user.
        user: u64,
    },
    /// Fetch one page of a circle list.
    Circle {
        /// Target user.
        user: u64,
        /// Which list.
        direction: Direction,
        /// Zero-based page number.
        page: usize,
    },
    /// A serving-layer query ([`crate::query`]) — answered by the
    /// `gplus-serve` engine; the crawl frontend rejects it as
    /// [`QueryError::Unsupported`].
    Query(QueryRequest),
}

/// A response frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Profile page.
    Profile(ProfilePage),
    /// Circle page.
    Circle(CirclePage),
    /// Serving-layer answer.
    Query(QueryResponse),
    /// Error outcome.
    Error(FetchError),
}

/// Frame-encoding errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The serialised payload cannot fit one frame: either it exceeds
    /// [`MAX_FRAME_LEN`] or its length does not fit the `u32` prefix.
    /// Encoding it anyway would truncate the header and desync the
    /// stream, so the frame is refused instead.
    Oversized {
        /// Actual payload length in bytes.
        len: usize,
        /// The frame cap it exceeded.
        max: usize,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Oversized { len, max } => {
                write!(f, "payload of {len} bytes exceeds the {max}-byte frame cap")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Encodes one frame (request or response) into `dst`.
///
/// Returns [`WireError::Oversized`] — writing nothing — when the payload
/// exceeds [`MAX_FRAME_LEN`] or its length cannot be represented in the
/// `u32` prefix; an unchecked `len as u32` here would silently truncate
/// the header and desync every frame after it.
pub fn encode<T: Serialize>(message: &T, dst: &mut BytesMut) -> Result<(), WireError> {
    let payload = serde_json::to_vec(message).expect("wire types serialise");
    if payload.len() > MAX_FRAME_LEN || u32::try_from(payload.len()).is_err() {
        return Err(WireError::Oversized { len: payload.len(), max: MAX_FRAME_LEN });
    }
    dst.reserve(4 + payload.len());
    dst.put_u32(payload.len() as u32);
    dst.put_slice(&payload);
    Ok(())
}

/// Frame-decoding errors.
#[derive(Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Not enough bytes buffered yet; read more and retry.
    Incomplete,
    /// The length prefix exceeds [`MAX_FRAME_LEN`] (or cannot index this
    /// platform's address space at all). Carried as `u64` so the error
    /// reports the advertised length faithfully even where it does not
    /// fit a `usize`.
    FrameTooLarge(u64),
    /// The payload failed to parse.
    Malformed(String),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Incomplete => f.write_str("incomplete frame"),
            DecodeError::FrameTooLarge(n) => write!(f, "frame of {n} bytes exceeds cap"),
            DecodeError::Malformed(e) => write!(f, "malformed frame: {e}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Attempts to decode one frame from `src`, consuming it on success.
/// Returns [`DecodeError::Incomplete`] when more bytes are needed —
/// the caller keeps the buffer and reads more, exactly the Tokio framing
/// discipline.
pub fn decode<T: for<'de> Deserialize<'de>>(src: &mut BytesMut) -> Result<T, DecodeError> {
    if src.len() < 4 {
        return Err(DecodeError::Incomplete);
    }
    let advertised = u32::from_be_bytes([src[0], src[1], src[2], src[3]]);
    // checked narrowing: a prefix that cannot index memory on this
    // platform is exactly as hostile as one beyond the frame cap
    let len = match usize::try_from(advertised) {
        Ok(len) if len <= MAX_FRAME_LEN => len,
        _ => return Err(DecodeError::FrameTooLarge(u64::from(advertised))),
    };
    if src.len() < 4 + len {
        return Err(DecodeError::Incomplete);
    }
    src.advance(4);
    let payload = src.split_to(len);
    serde_json::from_slice(&payload).map_err(|e| DecodeError::Malformed(e.to_string()))
}

/// Deterministic frame corruption: a seed-derived fraction of response
/// frames is damaged in transit (truncated or byte-flipped), exercising
/// the client's decode-failure path. Decisions key on the frame sequence
/// number, so a resend of the same logical response can succeed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CorruptionPlan {
    /// Seed for corruption decisions.
    pub seed: u64,
    /// Probability a response frame is corrupted, in `[0, 1]`.
    pub rate: f64,
}

impl CorruptionPlan {
    /// Creates a corruption plan.
    ///
    /// # Panics
    /// Panics if `rate` is outside `[0, 1]`.
    pub fn new(seed: u64, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "corruption rate must be in [0,1]");
        Self { seed, rate }
    }

    /// Whether response frame number `frame` is corrupted.
    pub fn corrupts(&self, frame: u64) -> bool {
        if self.rate <= 0.0 {
            return false;
        }
        if self.rate >= 1.0 {
            return true;
        }
        let h = splitmix64(self.seed.wrapping_mul(0x27d4_eb2f_1656_67c5) ^ splitmix64(frame));
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        u < self.rate
    }

    /// Damages an encoded frame in place, deterministically per frame
    /// number: even frames lose the second half of their bytes (decodes as
    /// [`DecodeError::Incomplete`]), odd frames get their first payload
    /// byte smashed to an invalid UTF-8 sequence (decodes as
    /// [`DecodeError::Malformed`]). Both damage shapes are guaranteed to
    /// fail decoding — corruption must never silently alter data.
    pub fn damage(&self, frame: u64, wire: &mut BytesMut) {
        if frame % 2 == 0 {
            let keep = 4 + (wire.len().saturating_sub(4)) / 2;
            wire.truncate(keep);
        } else if wire.len() > 4 {
            wire[4] = 0xff;
        }
    }
}

/// The service exposed through the wire protocol: every call encodes the
/// request, "transmits" it, decodes it server-side, executes, encodes the
/// response and decodes it client-side. Functionally identical to calling
/// the service directly — which the tests assert — but every byte crosses
/// the protocol boundary. An optional [`CorruptionPlan`] damages a
/// fraction of response frames; the client surfaces those as
/// [`FetchError::Transient`], exactly how a real client treats a garbled
/// HTTP body.
pub struct WireService {
    inner: GooglePlusService,
    corruption: Option<CorruptionPlan>,
    /// Response frames sent (the corruption key).
    frames_sent: AtomicU64,
    /// Response frames damaged in transit.
    frames_corrupted: AtomicU64,
    obs: WireObs,
}

/// Pre-resolved wire-level metric handles (same registry as the wrapped
/// service's request counters).
struct WireObs {
    frames_sent: Arc<Counter>,
    frames_corrupted: Arc<Counter>,
    bytes_sent: Arc<Counter>,
    frame_bytes: Arc<Histogram>,
}

impl WireService {
    /// Wraps a service.
    pub fn new(inner: GooglePlusService) -> Self {
        let registry = inner.registry();
        let obs = WireObs {
            frames_sent: registry.counter("service.wire.frames_sent_count"),
            frames_corrupted: registry.counter("service.wire.frames_corrupted_count"),
            bytes_sent: registry.counter("service.wire.sent_bytes"),
            frame_bytes: registry.histogram("service.wire.frame_bytes"),
        };
        Self {
            inner,
            corruption: None,
            frames_sent: AtomicU64::new(0),
            frames_corrupted: AtomicU64::new(0),
            obs,
        }
    }

    /// Wraps a service with frame corruption enabled.
    pub fn with_corruption(inner: GooglePlusService, plan: CorruptionPlan) -> Self {
        let mut wire = Self::new(inner);
        wire.corruption = Some(plan);
        wire
    }

    /// The wrapped service.
    pub fn inner(&self) -> &GooglePlusService {
        &self.inner
    }

    /// Response frames sent so far.
    pub fn frames_sent(&self) -> u64 {
        self.frames_sent.load(Ordering::Relaxed)
    }

    /// Response frames corrupted in transit so far.
    pub fn frames_corrupted(&self) -> u64 {
        self.frames_corrupted.load(Ordering::Relaxed)
    }

    /// Server side: executes one decoded request.
    pub fn serve(&self, request: Request) -> Response {
        match request {
            Request::Profile { user } => match self.inner.fetch_profile(user) {
                Ok(p) => Response::Profile(p),
                Err(e) => Response::Error(e),
            },
            Request::Circle { user, direction, page } => {
                match self.inner.fetch_circle_page(user, direction, page) {
                    Ok(c) => Response::Circle(c),
                    Err(e) => Response::Error(e),
                }
            }
            // the crawl frontend has no analysed snapshot to answer from;
            // serving queries belong to the gplus-serve engine
            Request::Query(_) => Response::Query(QueryResponse::Error(QueryError::Unsupported)),
        }
    }

    /// Full round trip: encode request → decode request → serve → encode
    /// response → decode response. With a [`CorruptionPlan`] active, a
    /// deterministic fraction of response frames is damaged in transit;
    /// the resulting decode failure surfaces as
    /// [`Response::Error`]`(`[`FetchError::Transient`]`)` so callers retry
    /// like they would any flaky transport.
    pub fn call(&self, request: &Request) -> Response {
        let mut wire = BytesMut::new();
        encode(request, &mut wire).expect("request frames fit the wire cap");
        let server_side: Request = decode(&mut wire).expect("client encodes valid frames");
        let response = self.serve(server_side);
        let mut wire = BytesMut::new();
        if encode(&response, &mut wire).is_err() {
            // an answer too large for one frame degrades to a retryable
            // error frame rather than desyncing the stream
            return Response::Error(FetchError::Transient);
        }
        self.obs.frames_sent.inc();
        self.obs.bytes_sent.add(wire.len() as u64);
        self.obs.frame_bytes.observe(wire.len() as u64);
        if let Some(plan) = &self.corruption {
            let frame = self.frames_sent.fetch_add(1, Ordering::Relaxed);
            if plan.corrupts(frame) {
                self.frames_corrupted.fetch_add(1, Ordering::Relaxed);
                self.obs.frames_corrupted.inc();
                plan.damage(frame, &mut wire);
                return match decode::<Response>(&mut wire) {
                    Ok(_) => unreachable!("damaged frames must not decode"),
                    Err(_) => Response::Error(FetchError::Transient),
                };
            }
        } else {
            self.frames_sent.fetch_add(1, Ordering::Relaxed);
        }
        decode(&mut wire).expect("server encodes valid frames")
    }

    /// Client-convenience: profile fetch over the wire.
    pub fn fetch_profile(&self, user: u64) -> Result<ProfilePage, FetchError> {
        match self.call(&Request::Profile { user }) {
            Response::Profile(p) => Ok(p),
            Response::Error(e) => Err(e),
            Response::Circle(_) | Response::Query(_) => {
                unreachable!("profile request yields profile response")
            }
        }
    }

    /// Client-convenience: circle fetch over the wire.
    pub fn fetch_circle_page(
        &self,
        user: u64,
        direction: Direction,
        page: usize,
    ) -> Result<CirclePage, FetchError> {
        match self.call(&Request::Circle { user, direction, page }) {
            Response::Circle(c) => Ok(c),
            Response::Error(e) => Err(e),
            Response::Profile(_) | Response::Query(_) => {
                unreachable!("circle request yields circle response")
            }
        }
    }
}

impl SocialApi for WireService {
    fn fetch_profile(&self, user: u64) -> Result<ProfilePage, FetchError> {
        WireService::fetch_profile(self, user)
    }

    fn fetch_circle_page(
        &self,
        user: u64,
        direction: Direction,
        page: usize,
    ) -> Result<CirclePage, FetchError> {
        WireService::fetch_circle_page(self, user, direction, page)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use gplus_synth::{SynthConfig, SynthNetwork};

    fn wire_service(n: usize) -> WireService {
        let net = SynthNetwork::generate(&SynthConfig::google_plus_2011(n, 41));
        WireService::new(GooglePlusService::new(
            net,
            ServiceConfig {
                failure_rate: 0.0,
                private_list_fraction: 0.0,
                ..Default::default()
            },
        ))
    }

    #[test]
    fn request_frames_round_trip() {
        for req in [
            Request::Profile { user: 42 },
            Request::Circle { user: 7, direction: Direction::InCircles, page: 3 },
        ] {
            let mut buf = BytesMut::new();
            encode(&req, &mut buf).unwrap();
            let back: Request = decode(&mut buf).unwrap();
            assert_eq!(back, req);
            assert!(buf.is_empty(), "frame fully consumed");
        }
    }

    #[test]
    fn incomplete_frames_wait_for_more_bytes() {
        let mut buf = BytesMut::new();
        encode(&Request::Profile { user: 1 }, &mut buf).unwrap();
        let full = buf.clone();
        // drip-feed byte by byte: everything short of the full frame is
        // Incomplete, never an error
        for cut in 0..full.len() {
            let mut partial = BytesMut::from(&full[..cut]);
            let r: Result<Request, _> = decode(&mut partial);
            assert_eq!(r.unwrap_err(), DecodeError::Incomplete, "cut at {cut}");
        }
    }

    #[test]
    fn two_frames_in_one_buffer() {
        let mut buf = BytesMut::new();
        encode(&Request::Profile { user: 1 }, &mut buf).unwrap();
        encode(&Request::Profile { user: 2 }, &mut buf).unwrap();
        let a: Request = decode(&mut buf).unwrap();
        let b: Request = decode(&mut buf).unwrap();
        assert_eq!(a, Request::Profile { user: 1 });
        assert_eq!(b, Request::Profile { user: 2 });
        assert!(buf.is_empty());
    }

    #[test]
    fn oversized_length_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32(u32::MAX);
        buf.put_slice(b"junk");
        let r: Result<Request, _> = decode(&mut buf);
        assert!(matches!(r.unwrap_err(), DecodeError::FrameTooLarge(_)));
    }

    #[test]
    fn oversized_payload_refused_at_encode() {
        // regression: the length prefix used to be an unchecked
        // `payload.len() as u32`; a payload past the cap must be refused
        // with a typed error, not truncated into a desynced header
        let mut buf = BytesMut::new();
        encode(&Request::Profile { user: 1 }, &mut buf).unwrap();
        let framed = buf.len();
        let huge = "x".repeat(MAX_FRAME_LEN + 1);
        assert_eq!(
            encode(&huge, &mut buf),
            Err(WireError::Oversized { len: MAX_FRAME_LEN + 3, max: MAX_FRAME_LEN })
        );
        // the refused frame wrote nothing: the stream stays aligned and
        // the earlier frame still decodes
        assert_eq!(buf.len(), framed);
        let back: Request = decode(&mut buf).unwrap();
        assert_eq!(back, Request::Profile { user: 1 });
        assert!(WireError::Oversized { len: 5, max: 4 }.to_string().contains("frame cap"));
    }

    #[test]
    fn malformed_payload_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32(4);
        buf.put_slice(b"}{!(");
        let r: Result<Request, _> = decode(&mut buf);
        assert!(matches!(r.unwrap_err(), DecodeError::Malformed(_)));
    }

    #[test]
    fn wire_calls_match_direct_calls() {
        let wire = wire_service(800);
        let direct = wire.inner();
        for user in [0u64, 1, 100, 500] {
            assert_eq!(wire.fetch_profile(user), direct.fetch_profile(user));
            assert_eq!(
                wire.fetch_circle_page(user, Direction::OutCircles, 0),
                direct.fetch_circle_page(user, Direction::OutCircles, 0)
            );
        }
    }

    #[test]
    fn wire_propagates_errors() {
        let wire = wire_service(200);
        assert_eq!(wire.fetch_profile(10_000_000), Err(FetchError::NotFound));
    }

    fn corrupt_service(n: usize, rate: f64) -> WireService {
        let net = SynthNetwork::generate(&SynthConfig::google_plus_2011(n, 41));
        WireService::with_corruption(
            GooglePlusService::new(
                net,
                ServiceConfig {
                    failure_rate: 0.0,
                    private_list_fraction: 0.0,
                    ..Default::default()
                },
            ),
            CorruptionPlan::new(99, rate),
        )
    }

    #[test]
    fn corrupted_frames_surface_as_transient() {
        let wire = corrupt_service(300, 1.0);
        assert_eq!(wire.fetch_profile(0), Err(FetchError::Transient));
        assert_eq!(
            wire.fetch_circle_page(0, Direction::InCircles, 0),
            Err(FetchError::Transient)
        );
        assert_eq!(wire.frames_corrupted(), 2);
    }

    #[test]
    fn corruption_rate_zero_is_transparent() {
        let wire = corrupt_service(300, 0.0);
        for user in [0u64, 5, 100] {
            assert_eq!(wire.fetch_profile(user), wire.inner().fetch_profile(user));
        }
        assert_eq!(wire.frames_corrupted(), 0);
    }

    #[test]
    fn corruption_is_deterministic_and_calibrated() {
        let plan = CorruptionPlan::new(7, 0.3);
        let hits = (0..20_000u64).filter(|&f| plan.corrupts(f)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "corruption rate {rate}");
        assert_eq!(
            (0..100u64).map(|f| plan.corrupts(f)).collect::<Vec<_>>(),
            (0..100u64).map(|f| plan.corrupts(f)).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn both_damage_shapes_fail_decoding() {
        let plan = CorruptionPlan::new(1, 1.0);
        let response = Response::Error(FetchError::NotFound);
        for frame in 0..6u64 {
            let mut wire = BytesMut::new();
            encode(&response, &mut wire).unwrap();
            plan.damage(frame, &mut wire);
            let r: Result<Response, _> = decode(&mut wire);
            assert!(r.is_err(), "frame {frame} decoded after damage");
        }
    }

    #[test]
    fn corrupted_transport_still_completes_with_retries() {
        // a retrying client rides out 30% frame corruption
        let wire = corrupt_service(300, 0.3);
        for user in 0..50u64 {
            let ok = (0..100).any(|_| wire.fetch_profile(user).is_ok());
            assert!(ok, "user {user} never fetched through corrupt transport");
        }
        assert!(wire.frames_corrupted() > 0);
        assert!(wire.frames_sent() > wire.frames_corrupted());
    }
}
