//! A token-bucket rate limiter over simulated time.
//!
//! The simulation has no wall clock; "time" advances one tick per request
//! the service processes (any client). The bucket refills `refill_per_tick`
//! tokens per tick up to `capacity`; a request that finds the bucket empty
//! is rejected with `RateLimited` and the client retries after backoff.
//! With `refill_per_tick >= 1` the limiter never fires; values below 1
//! throttle aggregate throughput to that fraction of requests — enough to
//! exercise the crawler's backoff path deterministically.

use serde::{Deserialize, Serialize};

/// Token bucket over request-driven virtual time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TokenBucket {
    capacity: f64,
    tokens: f64,
    refill_per_tick: f64,
}

impl TokenBucket {
    /// Creates a full bucket.
    ///
    /// # Panics
    /// Panics if `capacity` is not a positive finite number or
    /// `refill_per_tick` is not a non-negative finite number. Rejecting
    /// infinities here is what lets every later accounting step saturate
    /// instead of propagating `inf`/`NaN` into admission decisions.
    pub fn new(capacity: f64, refill_per_tick: f64) -> Self {
        assert!(capacity > 0.0 && capacity.is_finite(), "capacity must be positive and finite");
        assert!(
            refill_per_tick >= 0.0 && refill_per_tick.is_finite(),
            "refill must be non-negative and finite"
        );
        Self { capacity, tokens: capacity, refill_per_tick }
    }

    /// Advances `ticks` ticks of refill with *saturating* accounting: the
    /// product `refill_per_tick * ticks` may overflow `f64` to infinity
    /// when a serving workload sleeps far past the refill cadence (or a
    /// virtual clock jumps), and the unclamped sum would then poison every
    /// later comparison. The balance is clamped into `[0, capacity]`
    /// before it is stored, so no overflow can escape.
    pub fn advance(&mut self, ticks: u64) {
        if ticks == 0 {
            return;
        }
        // `ticks as f64` rounds for u64s beyond 2^53; acceptable — the
        // bucket saturates at capacity long before rounding matters
        let refill = self.refill_per_tick * ticks as f64;
        self.tokens = (self.tokens + refill).clamp(0.0, self.capacity);
    }

    /// Advances one tick (refill) and tries to take one token.
    /// Returns `true` if the request is admitted.
    pub fn try_acquire(&mut self) -> bool {
        self.try_acquire_cost(1.0)
    }

    /// Advances one tick (refill) and tries to take `cost` tokens. This
    /// is the cost-weighted admission the serving engine's shedding
    /// policy is built on: under pressure the balance hovers low, so
    /// cheap queries (cost 1) keep being admitted while expensive ones
    /// (cost 4+) are rejected first — graceful degradation falls out of
    /// the price structure with no extra state.
    ///
    /// # Panics
    /// Panics if `cost` is not a positive finite number.
    pub fn try_acquire_cost(&mut self, cost: f64) -> bool {
        assert!(cost > 0.0 && cost.is_finite(), "admission cost must be positive and finite");
        self.advance(1);
        if self.tokens >= cost {
            self.tokens -= cost;
            true
        } else {
            false
        }
    }

    /// Admission ticks until the balance could cover `cost`: `0` when it
    /// already does, `u64::MAX` when it never will (no refill, or a cost
    /// above capacity). This is the `retry_after` hint shed queries carry
    /// back to the client, and it is exact for a quiet bucket: after that
    /// many refill ticks with no competing admissions, `try_acquire_cost`
    /// succeeds.
    pub fn ticks_until(&self, cost: f64) -> u64 {
        if self.tokens >= cost {
            return 0;
        }
        if self.refill_per_tick <= 0.0 || cost > self.capacity {
            return u64::MAX;
        }
        let deficit = cost - self.tokens;
        let ticks = (deficit / self.refill_per_tick).ceil();
        if ticks >= u64::MAX as f64 {
            u64::MAX
        } else {
            ticks as u64
        }
    }

    /// Current token count (for tests/telemetry).
    pub fn available(&self) -> f64 {
        self.tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_bucket_admits_burst() {
        let mut b = TokenBucket::new(5.0, 0.0);
        for _ in 0..5 {
            assert!(b.try_acquire());
        }
        assert!(!b.try_acquire());
    }

    #[test]
    fn refill_restores_capacity_over_ticks() {
        let mut b = TokenBucket::new(2.0, 0.5);
        assert!(b.try_acquire()); // 2.0 -> refill 2.0 (capped) -> 1.0
        assert!(b.try_acquire()); // 1.5 -> 0.5
        assert!(b.try_acquire()); // 1.0 -> 0.0
        assert!(!b.try_acquire()); // 0.5 < 1
        assert!(b.try_acquire()); // 1.0 -> 0.0
    }

    #[test]
    fn refill_ge_one_never_limits() {
        let mut b = TokenBucket::new(1.0, 1.0);
        for _ in 0..1000 {
            assert!(b.try_acquire());
        }
    }

    #[test]
    fn throughput_matches_refill_fraction() {
        let mut b = TokenBucket::new(10.0, 0.25);
        let admitted = (0..10_000).filter(|_| b.try_acquire()).count();
        let rate = admitted as f64 / 10_000.0;
        assert!((rate - 0.25).abs() < 0.01, "admission rate {rate}");
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn rejects_zero_capacity() {
        let _ = TokenBucket::new(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn rejects_infinite_capacity() {
        let _ = TokenBucket::new(f64::INFINITY, 1.0);
    }

    #[test]
    #[should_panic(expected = "refill")]
    fn rejects_infinite_refill() {
        let _ = TokenBucket::new(10.0, f64::INFINITY);
    }

    #[test]
    fn sustained_burst_saturates_instead_of_overflowing() {
        // regression: a serving workload that idles far past the refill
        // cadence drives `refill * ticks` toward f64 overflow; the balance
        // must saturate at capacity, never reach inf/NaN, and admission
        // must keep working afterwards
        let mut b = TokenBucket::new(50.0, f64::MAX / 4.0);
        for burst in 0..4 {
            b.advance(u64::MAX); // refill product overflows f64 to inf
            assert!(b.available().is_finite(), "burst {burst}: non-finite balance");
            assert_eq!(b.available(), 50.0, "burst {burst}: saturated at capacity");
            let admitted = (0..200).filter(|_| b.try_acquire()).count();
            // try_acquire itself refills >= capacity per tick here, so
            // every request in the burst is admitted — and none panics
            assert_eq!(admitted, 200, "burst {burst}");
            assert!(b.available() <= 50.0, "burst {burst}: never above capacity");
        }
    }

    #[test]
    fn bulk_advance_matches_per_tick_refill() {
        let mut a = TokenBucket::new(10.0, 0.25);
        let mut b = TokenBucket::new(10.0, 0.25);
        // drain both
        while a.try_acquire() {
            assert!(b.try_acquire());
        }
        assert!(!b.try_acquire());
        for _ in 0..13 {
            a.advance(1);
        }
        b.advance(13);
        assert!((a.available() - b.available()).abs() < 1e-9);
    }

    #[test]
    fn cost_weighted_admission_prices_expensive_out_first() {
        // capacity 4, slow refill: one expensive (cost 4) query drains the
        // bucket; afterwards cheap queries recover long before another
        // expensive one can — the degradation order the engine relies on
        let mut b = TokenBucket::new(4.0, 0.5);
        assert!(b.try_acquire_cost(4.0));
        assert!(!b.try_acquire_cost(4.0)); // 0.5 < 4
        assert!(b.try_acquire_cost(1.0)); // 1.0 >= 1 — cheap still serves
        assert!(!b.try_acquire_cost(4.0));
        assert!(b.try_acquire_cost(1.0));
    }

    #[test]
    fn ticks_until_is_exact_for_quiet_bucket() {
        let mut b = TokenBucket::new(8.0, 0.5);
        assert_eq!(b.ticks_until(4.0), 0);
        assert!(b.try_acquire_cost(8.0)); // drain (after +0.5 refill, 8 capped)
        let wait = b.ticks_until(4.0);
        assert_eq!(wait, 8); // ceil(4 / 0.5)
        b.advance(wait - 1);
        assert_eq!(b.ticks_until(4.0), 1);
        b.advance(1);
        assert_eq!(b.ticks_until(4.0), 0);
        assert!(b.try_acquire_cost(4.0));
    }

    #[test]
    fn ticks_until_reports_never_for_unservable_costs() {
        let mut drained = TokenBucket::new(2.0, 0.0);
        assert!(drained.try_acquire_cost(2.0));
        // no refill: a drained bucket never recovers
        assert_eq!(drained.ticks_until(1.0), u64::MAX);
        // cost above capacity can never be covered even at full refill
        let full = TokenBucket::new(2.0, 1.0);
        assert_eq!(full.ticks_until(3.0), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "cost")]
    fn rejects_non_positive_cost() {
        let mut b = TokenBucket::new(2.0, 1.0);
        let _ = b.try_acquire_cost(0.0);
    }

    #[test]
    fn advance_zero_is_a_no_op() {
        let mut b = TokenBucket::new(5.0, 1.0);
        assert!(b.try_acquire());
        let before = b.available();
        b.advance(0);
        assert_eq!(b.available(), before);
    }
}
