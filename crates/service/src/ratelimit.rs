//! A token-bucket rate limiter over simulated time.
//!
//! The simulation has no wall clock; "time" advances one tick per request
//! the service processes (any client). The bucket refills `refill_per_tick`
//! tokens per tick up to `capacity`; a request that finds the bucket empty
//! is rejected with `RateLimited` and the client retries after backoff.
//! With `refill_per_tick >= 1` the limiter never fires; values below 1
//! throttle aggregate throughput to that fraction of requests — enough to
//! exercise the crawler's backoff path deterministically.

use serde::{Deserialize, Serialize};

/// Token bucket over request-driven virtual time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TokenBucket {
    capacity: f64,
    tokens: f64,
    refill_per_tick: f64,
}

impl TokenBucket {
    /// Creates a full bucket.
    ///
    /// # Panics
    /// Panics if `capacity <= 0` or `refill_per_tick < 0`.
    pub fn new(capacity: f64, refill_per_tick: f64) -> Self {
        assert!(capacity > 0.0, "capacity must be positive");
        assert!(refill_per_tick >= 0.0, "refill must be non-negative");
        Self { capacity, tokens: capacity, refill_per_tick }
    }

    /// Advances one tick (refill) and tries to take one token.
    /// Returns `true` if the request is admitted.
    pub fn try_acquire(&mut self) -> bool {
        self.tokens = (self.tokens + self.refill_per_tick).min(self.capacity);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Current token count (for tests/telemetry).
    pub fn available(&self) -> f64 {
        self.tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_bucket_admits_burst() {
        let mut b = TokenBucket::new(5.0, 0.0);
        for _ in 0..5 {
            assert!(b.try_acquire());
        }
        assert!(!b.try_acquire());
    }

    #[test]
    fn refill_restores_capacity_over_ticks() {
        let mut b = TokenBucket::new(2.0, 0.5);
        assert!(b.try_acquire()); // 2.0 -> refill 2.0 (capped) -> 1.0
        assert!(b.try_acquire()); // 1.5 -> 0.5
        assert!(b.try_acquire()); // 1.0 -> 0.0
        assert!(!b.try_acquire()); // 0.5 < 1
        assert!(b.try_acquire()); // 1.0 -> 0.0
    }

    #[test]
    fn refill_ge_one_never_limits() {
        let mut b = TokenBucket::new(1.0, 1.0);
        for _ in 0..1000 {
            assert!(b.try_acquire());
        }
    }

    #[test]
    fn throughput_matches_refill_fraction() {
        let mut b = TokenBucket::new(10.0, 0.25);
        let admitted = (0..10_000).filter(|_| b.try_acquire()).count();
        let rate = admitted as f64 / 10_000.0;
        assert!((rate - 0.25).abs() < 0.01, "admission rate {rate}");
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn rejects_zero_capacity() {
        let _ = TokenBucket::new(0.0, 1.0);
    }
}
