//! Online-query wire messages: the request/response vocabulary of the
//! `gplus-serve` engine.
//!
//! The crawl-era protocol ([`crate::wire`]) carries two request shapes —
//! profile page and circle page — because that is all a crawler needs.
//! Promoting the batch pipeline into a serving layer (ROADMAP #1) adds the
//! paper's *measurement* queries as an online vocabulary: point lookups,
//! top-k popularity rankings, pairwise shortest paths, and friend
//! recommendations. The types here are pure data — the engine answering
//! them lives in the `gplus-serve` crate, which depends on this one — and
//! travel inside [`crate::wire::Request::Query`] /
//! [`crate::wire::Response::Query`] frames, so one length-prefixed
//! protocol carries both the crawl and the serving APIs.
//!
//! All user identifiers are `u64` *public* ids (the id space a client
//! knows), never internal CSR node indices; the engine converts with
//! checked narrowing and answers [`QueryError::UnknownUser`] rather than
//! panicking on u64-scale ids.

use crate::page::Direction;
use gplus_geo::Country;
use serde::{Deserialize, Serialize};

/// Upper bound on `k` for top-k and recommendation queries; larger values
/// are clamped server-side so a single frame can never exceed the wire
/// cap.
pub const MAX_TOP_K: u32 = 1_000;

/// Upper bound on neighbours returned by one [`QueryRequest::Circles`]
/// answer (mirrors the crawl frontend's page discipline).
pub const MAX_CIRCLE_FETCH: u32 = 10_000;

/// The popularity measure a [`QueryRequest::TopK`] ranks by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RankMetric {
    /// PageRank score (the paper's Table-1 robustness check).
    PageRank,
    /// Raw in-degree (the paper's Table-1 ranking).
    InDegree,
    /// Out-degree.
    OutDegree,
}

impl RankMetric {
    /// Stable lower-case label (metric names, logs).
    pub fn label(self) -> &'static str {
        match self {
            RankMetric::PageRank => "pagerank",
            RankMetric::InDegree => "in_degree",
            RankMetric::OutDegree => "out_degree",
        }
    }
}

/// A serving-layer query.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryRequest {
    /// Point lookup: profile summary (name, degrees, reciprocity flag,
    /// country).
    Profile {
        /// Target user (public id).
        user: u64,
    },
    /// Point lookup: in/out degree only.
    Degree {
        /// Target user (public id).
        user: u64,
    },
    /// Point lookup: one circle list (capped at `limit`).
    Circles {
        /// Target user (public id).
        user: u64,
        /// Which list.
        direction: Direction,
        /// Maximum entries returned (clamped to [`MAX_CIRCLE_FETCH`]).
        limit: u32,
    },
    /// Point lookup: relation reciprocity of one user (Eq. 1 of the paper).
    Reciprocity {
        /// Target user (public id).
        user: u64,
    },
    /// Top-k ranking, optionally restricted to one country's located
    /// users (the `extensions/rankings` per-country view).
    TopK {
        /// Popularity measure.
        metric: RankMetric,
        /// List length (clamped to [`MAX_TOP_K`]).
        k: u32,
        /// Restrict to users located in this country.
        country: Option<Country>,
    },
    /// Pairwise directed shortest path in hops.
    ShortestPath {
        /// Source user (public id).
        src: u64,
        /// Target user (public id).
        dst: u64,
    },
    /// Friend-of-friend recommendations ranked by common-neighbour count.
    Recommend {
        /// Target user (public id).
        user: u64,
        /// Number of recommendations (clamped to [`MAX_TOP_K`]).
        k: u32,
    },
    /// Snapshot identity: epoch counter plus graph dimensions — the probe
    /// the epoch-swap tests assert tear-freedom with.
    Epoch,
}

impl QueryRequest {
    /// Stable lower-case label for logs and per-query-type metrics.
    pub fn kind(&self) -> &'static str {
        match self {
            QueryRequest::Profile { .. } => "profile",
            QueryRequest::Degree { .. } => "degree",
            QueryRequest::Circles { .. } => "circles",
            QueryRequest::Reciprocity { .. } => "reciprocity",
            QueryRequest::TopK { .. } => "topk",
            QueryRequest::ShortestPath { .. } => "shortest_path",
            QueryRequest::Recommend { .. } => "recommend",
            QueryRequest::Epoch => "epoch",
        }
    }
}

/// One entry of a ranked list (top-k, recommendations).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankedUser {
    /// Public user id.
    pub user: u64,
    /// Metric value: PageRank score, degree, or common-neighbour count.
    pub score: f64,
}

/// Point-lookup profile summary served from an analysed snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileSummary {
    /// Public user id.
    pub user: u64,
    /// Display name, when the snapshot knows the profile.
    pub display_name: Option<String>,
    /// Followers.
    pub in_degree: u64,
    /// Followees.
    pub out_degree: u64,
    /// Whether at least one of this user's edges is reciprocated.
    pub reciprocal: bool,
    /// ISO country code, when located.
    pub country: Option<Country>,
}

/// Why a query could not be answered.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryError {
    /// The id does not name a node of the serving snapshot (including
    /// u64-scale ids that cannot index a CSR graph).
    UnknownUser(u64),
    /// The endpoint does not answer this request shape (e.g. a crawl
    /// frontend receiving a serving query, or vice versa).
    Unsupported,
    /// The answer could not fit one wire frame even after clamping.
    Oversized,
    /// The engine shed this query under overload pressure. Cost-weighted
    /// admission rejects expensive kinds first; the client should back
    /// off for `retry_after` admission ticks before retrying
    /// (`u64::MAX` means the engine can never admit this kind under its
    /// current limiter configuration).
    Overloaded {
        /// Admission ticks until the token balance can cover this query.
        retry_after: u64,
    },
    /// The query ran past its deadline budget; the partial work was
    /// discarded rather than served as a possibly-stale slow answer.
    DeadlineExceeded {
        /// What the query actually cost on the engine clock.
        elapsed_us: u64,
        /// The configured per-query budget.
        deadline_us: u64,
    },
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::UnknownUser(u) => write!(f, "unknown user {u}"),
            QueryError::Unsupported => f.write_str("unsupported request"),
            QueryError::Oversized => f.write_str("response exceeds frame cap"),
            QueryError::Overloaded { retry_after } => {
                write!(f, "query shed under overload; retry after {retry_after} ticks")
            }
            QueryError::DeadlineExceeded { elapsed_us, deadline_us } => {
                write!(f, "deadline exceeded: {elapsed_us}us spent of {deadline_us}us budget")
            }
        }
    }
}

impl std::error::Error for QueryError {}

/// A serving-layer answer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QueryResponse {
    /// Answer to [`QueryRequest::Profile`].
    Profile(ProfileSummary),
    /// Answer to [`QueryRequest::Degree`].
    Degree {
        /// Public user id.
        user: u64,
        /// Followers.
        in_degree: u64,
        /// Followees.
        out_degree: u64,
    },
    /// Answer to [`QueryRequest::Circles`].
    Circles {
        /// Public user id.
        user: u64,
        /// Which list.
        direction: Direction,
        /// Neighbour ids, ascending, at most the requested limit.
        users: Vec<u64>,
        /// Full list length before the limit was applied.
        total: u64,
    },
    /// Answer to [`QueryRequest::Reciprocity`].
    Reciprocity {
        /// Public user id.
        user: u64,
        /// `|OS ∩ IS| / |OS|`, `None` when the user follows nobody.
        reciprocity: Option<f64>,
        /// `|OS ∩ IS|` — reciprocated followees.
        reciprocal_edges: u64,
    },
    /// Answer to [`QueryRequest::TopK`].
    TopK {
        /// Measure ranked by.
        metric: RankMetric,
        /// Country restriction echoed back.
        country: Option<Country>,
        /// Ranked entries, best first.
        entries: Vec<RankedUser>,
    },
    /// Answer to [`QueryRequest::ShortestPath`].
    ShortestPath {
        /// Source user.
        src: u64,
        /// Target user.
        dst: u64,
        /// Directed hop distance; `None` when unreachable.
        distance: Option<u32>,
    },
    /// Answer to [`QueryRequest::Recommend`].
    Recommend {
        /// Public user id.
        user: u64,
        /// Ranked friend-of-friend candidates, best first.
        recommendations: Vec<RankedUser>,
    },
    /// Answer to [`QueryRequest::Epoch`].
    Epoch {
        /// Monotone swap counter of the serving engine.
        epoch: u64,
        /// Nodes in the serving snapshot.
        nodes: u64,
        /// Directed edges in the serving snapshot.
        edges: u64,
        /// Seed the snapshot was generated from (snapshot identity).
        seed: u64,
    },
    /// The query failed.
    Error(QueryError),
}

impl QueryResponse {
    /// Whether this answer is an error.
    pub fn is_error(&self) -> bool {
        matches!(self, QueryResponse::Error(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{decode, encode};
    use bytes::BytesMut;

    #[test]
    fn query_frames_round_trip() {
        let requests = [
            QueryRequest::Profile { user: 42 },
            QueryRequest::Degree { user: u64::MAX },
            QueryRequest::Circles { user: 7, direction: Direction::InCircles, limit: 100 },
            QueryRequest::Reciprocity { user: 3 },
            QueryRequest::TopK {
                metric: RankMetric::PageRank,
                k: 10,
                country: Some(Country::Br),
            },
            QueryRequest::ShortestPath { src: 1, dst: 2 },
            QueryRequest::Recommend { user: 9, k: 5 },
            QueryRequest::Epoch,
        ];
        for req in requests {
            let mut buf = BytesMut::new();
            encode(&req, &mut buf).unwrap();
            let back: QueryRequest = decode(&mut buf).unwrap();
            assert_eq!(back, req);
        }
    }

    #[test]
    fn response_frames_round_trip() {
        let responses = [
            QueryResponse::Degree { user: 1, in_degree: 2, out_degree: 3 },
            QueryResponse::ShortestPath { src: 0, dst: 5, distance: None },
            QueryResponse::Epoch { epoch: 3, nodes: 100, edges: 500, seed: 2012 },
            QueryResponse::Error(QueryError::UnknownUser(u64::MAX)),
            QueryResponse::Error(QueryError::Overloaded { retry_after: 17 }),
            QueryResponse::Error(QueryError::Overloaded { retry_after: u64::MAX }),
            QueryResponse::Error(QueryError::DeadlineExceeded {
                elapsed_us: 1_000,
                deadline_us: 500,
            }),
        ];
        for resp in responses {
            let mut buf = BytesMut::new();
            encode(&resp, &mut buf).unwrap();
            let back: QueryResponse = decode(&mut buf).unwrap();
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn kind_labels_are_stable() {
        assert_eq!(QueryRequest::Epoch.kind(), "epoch");
        assert_eq!(QueryRequest::Profile { user: 0 }.kind(), "profile");
        assert_eq!(RankMetric::PageRank.label(), "pagerank");
    }
}
