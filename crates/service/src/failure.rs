//! Deterministic failure injection.
//!
//! Real crawls see sporadic 5xx responses. The injector decides, purely
//! from `(seed, user, nonce)`, whether a given request attempt fails — so a
//! retry with a new nonce can succeed, runs are reproducible bit-for-bit,
//! and no shared RNG state serialises the concurrent workers.

/// SplitMix64 finaliser — a well-mixed 64-bit hash. Public because every
/// seed-derived decision in the workspace (fault plans, retry jitter,
/// frame corruption) hashes through it.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Stateless Bernoulli failure decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailureInjector {
    seed: u64,
    /// Probability in `[0, 1]` that any single attempt fails transiently.
    pub rate: f64,
}

impl FailureInjector {
    /// Creates an injector.
    ///
    /// # Panics
    /// Panics if `rate` is outside `[0, 1]`.
    pub fn new(seed: u64, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "failure rate must be in [0,1]");
        Self { seed, rate }
    }

    /// Whether the attempt identified by `(user, nonce)` fails.
    pub fn fails(&self, user: u64, nonce: u64) -> bool {
        if self.rate <= 0.0 {
            return false;
        }
        if self.rate >= 1.0 {
            return true;
        }
        let h = splitmix64(self.seed ^ splitmix64(user) ^ nonce.rotate_left(17));
        // map the top 53 bits to [0,1)
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        u < self.rate
    }
}

/// Deterministic per-user Bernoulli decision (e.g. "is this user's circle
/// list private"), independent of the failure stream.
pub fn user_coin(seed: u64, user: u64, rate: f64) -> bool {
    if rate <= 0.0 {
        return false;
    }
    if rate >= 1.0 {
        return true;
    }
    let h = splitmix64(seed.wrapping_mul(0x2545_f491_4f6c_dd1d) ^ splitmix64(user));
    let u = (h >> 11) as f64 / (1u64 << 53) as f64;
    u < rate
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let inj = FailureInjector::new(9, 0.3);
        for user in 0..50 {
            for nonce in 0..5 {
                assert_eq!(inj.fails(user, nonce), inj.fails(user, nonce));
            }
        }
    }

    #[test]
    fn rate_zero_and_one() {
        let never = FailureInjector::new(1, 0.0);
        let always = FailureInjector::new(1, 1.0);
        for user in 0..20 {
            assert!(!never.fails(user, 0));
            assert!(always.fails(user, 0));
        }
    }

    #[test]
    fn empirical_rate_close() {
        let inj = FailureInjector::new(42, 0.2);
        let n = 50_000u64;
        let fails = (0..n).filter(|&i| inj.fails(i % 1000, i)).count();
        let rate = fails as f64 / n as f64;
        assert!((rate - 0.2).abs() < 0.01, "empirical rate {rate}");
    }

    #[test]
    fn retry_can_succeed() {
        let inj = FailureInjector::new(3, 0.5);
        // some user whose first attempt fails must succeed within 20 retries
        let user = (0..1000).find(|&u| inj.fails(u, 0)).expect("some failure");
        assert!((1..20).any(|nonce| !inj.fails(user, nonce)));
    }

    #[test]
    fn user_coin_deterministic_and_calibrated() {
        let picked = (0..100_000).filter(|&u| user_coin(7, u, 0.1)).count();
        let rate = picked as f64 / 100_000.0;
        assert!((rate - 0.1).abs() < 0.01, "coin rate {rate}");
        assert_eq!(user_coin(7, 5, 0.1), user_coin(7, 5, 0.1));
        // different seeds give different selections
        let a: Vec<bool> = (0..100).map(|u| user_coin(1, u, 0.5)).collect();
        let b: Vec<bool> = (0..100).map(|u| user_coin(2, u, 0.5)).collect();
        assert_ne!(a, b);
    }
}
