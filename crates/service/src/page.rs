//! The response types the simulated service returns — the public view of a
//! profile and one page of a circle list.

use gplus_geo::{Country, LatLon};
use gplus_profiles::{Attribute, Gender, LookingFor, Occupation, Profile, RelationshipStatus};
use serde::{Deserialize, Serialize};

/// Which circle list to page through (§2.1's two default profile lists).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// "Have user in circles" — followers; edges point *to* this user.
    InCircles,
    /// "In user's circles" — followees; edges point *from* this user.
    OutCircles,
}

/// The public profile page as an anonymous crawler sees it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfilePage {
    /// User id.
    pub user_id: u64,
    /// Display name (always public).
    pub display_name: String,
    /// Which attributes are publicly visible.
    pub public_attributes: Vec<Attribute>,
    /// Gender, if shared.
    pub gender: Option<Gender>,
    /// Relationship status, if shared.
    pub relationship: Option<RelationshipStatus>,
    /// Occupation, if shared.
    pub occupation: Option<Occupation>,
    /// "Looking for" selection, if shared.
    pub looking_for: Option<LookingFor>,
    /// Country resolved from the shared "places lived" field, if shared and
    /// geocodable.
    pub country: Option<Country>,
    /// Map coordinates of the last "places lived" entry, under the same
    /// visibility conditions as `country` (§3.1: "the Google+ system
    /// automatically tries to mark the place on the map").
    pub location: Option<LatLon>,
    /// The raw "places lived" free text, when shared — what the user
    /// actually typed; `country`/`location` are what the geocoder made of
    /// it (absent when it could not resolve the text).
    pub places_lived_text: Option<String>,
    /// The follower count *declared on the page* — the full number, even
    /// when the list itself is truncated at the circle limit. §2.2's
    /// lost-edge estimate compares this to the edges actually collected.
    pub declared_in_count: u64,
    /// The followee count declared on the page.
    pub declared_out_count: u64,
    /// Whether the circle lists are private (§2.1).
    pub lists_private: bool,
}

impl ProfilePage {
    /// Builds the public view of `profile` with declared circle counts.
    pub fn from_profile(
        profile: &Profile,
        declared_in: u64,
        declared_out: u64,
        lists_private: bool,
    ) -> Self {
        Self {
            user_id: profile.user_id,
            display_name: profile.display_name(),
            public_attributes: profile.public_attributes(),
            gender: profile.public_gender(),
            relationship: profile.public_relationship(),
            occupation: profile.public_occupation(),
            looking_for: profile.public_looking_for(),
            country: profile.public_country(),
            location: profile.public_location(),
            places_lived_text: profile.public_places_text(),
            declared_in_count: declared_in,
            declared_out_count: declared_out,
            lists_private,
        }
    }

    /// Number of shared fields (Figure 8's statistic).
    pub fn fields_shared(&self) -> usize {
        self.public_attributes.len()
    }

    /// Number of shared fields excluding the Work/Home contact entries —
    /// Figure 2's x-axis ("removing the fields of Home and Work information
    /// from the contabilization", §3.2).
    pub fn fields_shared_excl_contact(&self) -> usize {
        self.public_attributes
            .iter()
            .filter(|a| !matches!(a, Attribute::WorkContact | Attribute::HomeContact))
            .count()
    }

    /// Whether this user exposes a phone number (tel-user, §3.2).
    pub fn is_tel_user(&self) -> bool {
        self.public_attributes
            .iter()
            .any(|a| matches!(a, Attribute::WorkContact | Attribute::HomeContact))
    }
}

/// One page of a circle list.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CirclePage {
    /// The user whose list this is.
    pub user_id: u64,
    /// Direction of the list.
    pub direction: Direction,
    /// User ids on this page.
    pub users: Vec<u64>,
    /// Zero-based page number.
    pub page: usize,
    /// Whether another page exists (within the 10,000-entry cap).
    pub has_more: bool,
    /// Whether the underlying list was cut off by the circle-list limit —
    /// i.e. the declared count exceeds what paging can ever return.
    pub truncated: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use gplus_geo::Country;

    fn profile() -> Profile {
        Profile {
            user_id: 7,
            public_mask: Attribute::Name.bit()
                | Attribute::Gender.bit()
                | Attribute::PlacesLived.bit()
                | Attribute::WorkContact.bit(),
            gender: Gender::Female,
            relationship: RelationshipStatus::Married,
            country: Country::Mx,
            city_index: 0,
            occupation: Occupation::Journalist,
            looking_for: LookingFor::Networking,
            geocodable: true,
            celebrity_name: None,
        }
    }

    #[test]
    fn public_view_respects_mask() {
        let page = ProfilePage::from_profile(&profile(), 10, 5, false);
        assert_eq!(page.gender, Some(Gender::Female));
        assert_eq!(page.relationship, None); // not shared
        assert_eq!(page.occupation, None); // not shared
        assert_eq!(page.looking_for, None); // not shared
        assert_eq!(page.country, Some(Country::Mx));
        assert!(page.location.is_some());
        assert!(page.places_lived_text.is_some());
        assert_eq!(page.declared_in_count, 10);
        assert_eq!(page.declared_out_count, 5);
        assert_eq!(page.fields_shared(), 4);
        assert!(page.is_tel_user());
    }

    #[test]
    fn geocode_failure_hides_country() {
        let mut p = profile();
        p.geocodable = false;
        let page = ProfilePage::from_profile(&p, 0, 0, false);
        assert_eq!(page.country, None);
        assert_eq!(page.location, None);
        // the raw text is still visible — the user shared it; only the
        // geocoder failed
        assert!(page.places_lived_text.is_some());
    }

    #[test]
    fn page_text_geocodes_back_to_page_country() {
        let page = ProfilePage::from_profile(&profile(), 0, 0, false);
        let text = page.places_lived_text.as_deref().unwrap();
        let resolved = gplus_geo::geocode(text).expect("geocodable profile text");
        assert_eq!(Some(resolved.country), page.country);
    }

    #[test]
    fn tel_user_requires_contact_field() {
        let mut p = profile();
        p.public_mask &= !Attribute::WorkContact.bit();
        let page = ProfilePage::from_profile(&p, 0, 0, false);
        assert!(!page.is_tel_user());
        assert_eq!(page.fields_shared_excl_contact(), page.fields_shared());
    }

    #[test]
    fn contact_fields_excluded_from_fig2_count() {
        let page = ProfilePage::from_profile(&profile(), 0, 0, false);
        assert_eq!(page.fields_shared(), 4);
        assert_eq!(page.fields_shared_excl_contact(), 3);
    }
}
