//! Composable fault plans.
//!
//! [`crate::failure::FailureInjector`] models one failure mode: i.i.d.
//! transient errors. Real crawls see richer weather — whole-service
//! outages, correlated bursts of 5xxs, and individual accounts that never
//! load. A [`FaultPlan`] composes those modes; every decision is a pure
//! function of `(plan, seed, key)`, so runs are reproducible bit-for-bit
//! and no RNG state serialises the concurrent workers.
//!
//! Two kinds of keys drive the plan, with different determinism scopes:
//!
//! * **per-user keys** (`user`, per-user `attempt` counter) drive the
//!   Bernoulli and permanent-failure modes. These are independent of how
//!   requests from concurrent workers interleave, so crawl statistics
//!   under a plan using only these modes are identical across machine
//!   counts.
//! * **sequence keys** (the global request sequence number `seq`) drive
//!   outage windows and bursts. These model *service-side* weather: which
//!   user a given outage hits depends on arrival order, so under these
//!   modes only coverage/accounting invariants — not exact statistics —
//!   are stable across machine counts.

use crate::failure::splitmix64;
use serde::{Deserialize, Serialize};

/// Stream-separation constants: each fault mode hashes the seed through a
/// distinct odd multiplier so enabling one mode never perturbs another.
const STREAM_BERNOULLI: u64 = 0x9e6c_6df1_d0b5_a329;
const STREAM_PERMAFAIL: u64 = 0xc2b2_ae3d_27d4_eb4f;
const STREAM_BURST: u64 = 0x1656_67b1_9e37_79f9;

/// Identifies one request attempt for fault decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultKey {
    /// Global request sequence number (arrival order at the service).
    pub seq: u64,
    /// Target user.
    pub user: u64,
    /// Per-user attempt counter (how many requests for this user the
    /// service has admitted before this one).
    pub attempt: u64,
}

/// Why an injected fault fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultCause {
    /// I.i.d. per-attempt coin.
    Bernoulli,
    /// A scheduled outage window covered this request.
    Outage,
    /// A correlated burst covered this request's sequence block.
    Burst,
    /// The target user permanently fails.
    Permafail,
}

impl std::fmt::Display for FaultCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultCause::Bernoulli => f.write_str("bernoulli"),
            FaultCause::Outage => f.write_str("outage"),
            FaultCause::Burst => f.write_str("burst"),
            FaultCause::Permafail => f.write_str("permafail"),
        }
    }
}

/// A deterministic outage: every request whose sequence number lands in
/// `[start, start + len)` fails transiently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutageWindow {
    /// First affected sequence number.
    pub start: u64,
    /// Number of consecutive affected sequence numbers.
    pub len: u64,
}

impl OutageWindow {
    /// Whether `seq` falls inside the window.
    pub fn covers(&self, seq: u64) -> bool {
        seq >= self.start && seq - self.start < self.len
    }
}

/// Correlated failure runs: the sequence space is cut into blocks of
/// `block_len`; each block independently fails *in its entirety* with
/// probability `fail_prob`. Models the observation that real 5xxs arrive
/// in runs, not i.i.d.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BurstSpec {
    /// Requests per burst block (>= 1).
    pub block_len: u64,
    /// Probability a given block fails entirely, in `[0, 1]`.
    pub fail_prob: f64,
}

/// A composable, seed-derived fault schedule. All modes default to off;
/// the builder methods switch individual modes on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct FaultPlan {
    /// I.i.d. probability any single attempt fails, keyed on
    /// `(user, attempt)` so it is interleaving-independent.
    #[serde(default)]
    pub bernoulli_rate: f64,
    /// Scheduled outage windows over the request sequence space.
    #[serde(default)]
    pub outages: Vec<OutageWindow>,
    /// Correlated burst failures over sequence blocks.
    #[serde(default)]
    pub burst: Option<BurstSpec>,
    /// Fraction of users that fail permanently (seed-derived coin).
    #[serde(default)]
    pub permafail_fraction: f64,
    /// Explicit users that fail permanently (in addition to the fraction).
    #[serde(default)]
    pub permafail_users: Vec<u64>,
}

impl FaultPlan {
    /// A plan injecting no faults at all.
    pub fn none() -> Self {
        Self::default()
    }

    /// A plan with only the i.i.d. mode, equivalent to the legacy
    /// `failure_rate` knob.
    pub fn uniform(rate: f64) -> Self {
        Self { bernoulli_rate: rate, ..Self::default() }
    }

    /// Adds an outage window.
    pub fn with_outage(mut self, start: u64, len: u64) -> Self {
        self.outages.push(OutageWindow { start, len });
        self
    }

    /// Enables correlated bursts.
    pub fn with_burst(mut self, block_len: u64, fail_prob: f64) -> Self {
        self.burst = Some(BurstSpec { block_len, fail_prob });
        self
    }

    /// Marks a fraction of users as permanently failing.
    pub fn with_permafail_fraction(mut self, fraction: f64) -> Self {
        self.permafail_fraction = fraction;
        self
    }

    /// Marks explicit users as permanently failing.
    pub fn with_permafail_users(mut self, users: impl IntoIterator<Item = u64>) -> Self {
        self.permafail_users.extend(users);
        self
    }

    /// Whether the plan injects nothing (fast path for quiet services).
    pub fn is_quiet(&self) -> bool {
        self.bernoulli_rate <= 0.0
            && self.outages.is_empty()
            && self.burst.is_none()
            && self.permafail_fraction <= 0.0
            && self.permafail_users.is_empty()
    }

    /// Whether every configured mode is keyed purely on `(user, attempt)`,
    /// i.e. the plan's decisions do not depend on request interleaving.
    pub fn is_interleaving_independent(&self) -> bool {
        self.outages.is_empty() && self.burst.is_none()
    }

    /// Validates probabilities and window shapes.
    ///
    /// # Panics
    /// Panics on rates outside `[0, 1]` (NaN included) or zero-length
    /// burst blocks.
    pub fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.bernoulli_rate),
            "bernoulli_rate must be in [0,1], got {}",
            self.bernoulli_rate
        );
        assert!(
            (0.0..=1.0).contains(&self.permafail_fraction),
            "permafail_fraction must be in [0,1], got {}",
            self.permafail_fraction
        );
        if let Some(burst) = &self.burst {
            assert!(burst.block_len >= 1, "burst block_len must be >= 1");
            assert!(
                (0.0..=1.0).contains(&burst.fail_prob),
                "burst fail_prob must be in [0,1], got {}",
                burst.fail_prob
            );
        }
        for w in &self.outages {
            assert!(w.len >= 1, "outage windows must cover at least one request");
        }
    }

    /// Whether `user` is marked permanently failing under `seed`.
    pub fn permafails(&self, seed: u64, user: u64) -> bool {
        if self.permafail_users.contains(&user) {
            return true;
        }
        coin(seed.wrapping_mul(STREAM_PERMAFAIL) ^ splitmix64(user), self.permafail_fraction)
    }

    /// Decides whether the attempt identified by `key` fails, and why.
    /// Pure: the same `(plan, seed, key)` always yields the same answer.
    /// Checks the modes most specific first: permafail, then outage, then
    /// burst, then the i.i.d. coin.
    pub fn decide(&self, seed: u64, key: FaultKey) -> Option<FaultCause> {
        if self.permafails(seed, key.user) {
            return Some(FaultCause::Permafail);
        }
        if self.outages.iter().any(|w| w.covers(key.seq)) {
            return Some(FaultCause::Outage);
        }
        if let Some(burst) = &self.burst {
            let block = key.seq / burst.block_len.max(1);
            if coin(seed.wrapping_mul(STREAM_BURST) ^ splitmix64(block), burst.fail_prob) {
                return Some(FaultCause::Burst);
            }
        }
        let h = seed.wrapping_mul(STREAM_BERNOULLI)
            ^ splitmix64(key.user)
            ^ splitmix64(key.attempt.rotate_left(17));
        if coin(h, self.bernoulli_rate) {
            return Some(FaultCause::Bernoulli);
        }
        None
    }
}

/// Maps a hash input to `[0, 1)` and compares against `rate`.
fn coin(input: u64, rate: f64) -> bool {
    if rate <= 0.0 {
        return false;
    }
    if rate >= 1.0 {
        return true;
    }
    let u = (splitmix64(input) >> 11) as f64 / (1u64 << 53) as f64;
    u < rate
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEED: u64 = 0xfeed_beef;

    #[test]
    fn quiet_plan_never_fails() {
        let plan = FaultPlan::none();
        assert!(plan.is_quiet());
        for seq in 0..1000 {
            let key = FaultKey { seq, user: seq % 37, attempt: seq % 3 };
            assert_eq!(plan.decide(SEED, key), None);
        }
    }

    #[test]
    fn uniform_matches_configured_rate() {
        let plan = FaultPlan::uniform(0.25);
        let n = 40_000u64;
        let fails = (0..n)
            .filter(|&i| {
                plan.decide(SEED, FaultKey { seq: i, user: i % 997, attempt: i / 997 })
                    .is_some()
            })
            .count();
        let rate = fails as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "empirical rate {rate}");
    }

    #[test]
    fn bernoulli_is_independent_of_seq() {
        // the i.i.d. mode keys on (user, attempt) only: permuting seq must
        // not change any decision — this is what makes crawl stats
        // machine-count-invariant
        let plan = FaultPlan::uniform(0.4);
        for user in 0..200u64 {
            for attempt in 0..4u64 {
                let a = plan.decide(SEED, FaultKey { seq: 10, user, attempt });
                let b = plan.decide(SEED, FaultKey { seq: 99_999, user, attempt });
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn retry_escapes_bernoulli() {
        let plan = FaultPlan::uniform(0.5);
        let user = (0..500u64)
            .find(|&u| plan.decide(SEED, FaultKey { seq: 0, user: u, attempt: 0 }).is_some())
            .expect("some first attempt fails");
        assert!((1..30u64).any(|attempt| plan
            .decide(SEED, FaultKey { seq: attempt, user, attempt })
            .is_none()));
    }

    #[test]
    fn outage_window_covers_exactly_its_range() {
        let plan = FaultPlan::none().with_outage(100, 50);
        for seq in 0..300u64 {
            let got = plan.decide(SEED, FaultKey { seq, user: 1, attempt: 0 });
            if (100..150).contains(&seq) {
                assert_eq!(got, Some(FaultCause::Outage), "seq {seq}");
            } else {
                assert_eq!(got, None, "seq {seq}");
            }
        }
    }

    #[test]
    fn bursts_fail_whole_blocks() {
        let plan = FaultPlan::none().with_burst(64, 0.3);
        let mut failed_blocks = 0u64;
        let blocks = 500u64;
        for block in 0..blocks {
            let decisions: Vec<bool> = (0..64u64)
                .map(|i| {
                    plan.decide(SEED, FaultKey { seq: block * 64 + i, user: i, attempt: 0 })
                        .is_some()
                })
                .collect();
            // a block fails entirely or not at all
            assert!(
                decisions.iter().all(|&d| d) || decisions.iter().all(|&d| !d),
                "block {block} partially failed"
            );
            if decisions[0] {
                failed_blocks += 1;
            }
        }
        let rate = failed_blocks as f64 / blocks as f64;
        assert!((rate - 0.3).abs() < 0.08, "block failure rate {rate}");
    }

    #[test]
    fn permafail_users_always_fail() {
        let plan = FaultPlan::none().with_permafail_users([7, 13]);
        for attempt in 0..100u64 {
            let key = FaultKey { seq: attempt, user: 7, attempt };
            assert_eq!(plan.decide(SEED, key), Some(FaultCause::Permafail));
        }
        assert_eq!(plan.decide(SEED, FaultKey { seq: 0, user: 8, attempt: 0 }), None);
    }

    #[test]
    fn permafail_fraction_is_calibrated_and_sticky() {
        let plan = FaultPlan::none().with_permafail_fraction(0.1);
        let doomed = (0..50_000u64).filter(|&u| plan.permafails(SEED, u)).count();
        let rate = doomed as f64 / 50_000.0;
        assert!((rate - 0.1).abs() < 0.01, "permafail rate {rate}");
        // sticky: a doomed user fails on every attempt
        let user = (0..1000).find(|&u| plan.permafails(SEED, u)).unwrap();
        for attempt in 0..50u64 {
            let key = FaultKey { seq: 1_000_000 + attempt, user, attempt };
            assert_eq!(plan.decide(SEED, key), Some(FaultCause::Permafail));
        }
    }

    #[test]
    fn modes_use_independent_streams() {
        // enabling an outage must not change bernoulli decisions outside it
        let bare = FaultPlan::uniform(0.3);
        let with_outage = FaultPlan::uniform(0.3).with_outage(1_000_000, 10);
        for i in 0..2000u64 {
            let key = FaultKey { seq: i, user: i % 101, attempt: i / 101 };
            assert_eq!(bare.decide(SEED, key), with_outage.decide(SEED, key));
        }
    }

    #[test]
    fn interleaving_independence_classifier() {
        assert!(FaultPlan::uniform(0.2)
            .with_permafail_fraction(0.1)
            .is_interleaving_independent());
        assert!(!FaultPlan::none().with_outage(0, 5).is_interleaving_independent());
        assert!(!FaultPlan::none().with_burst(8, 0.5).is_interleaving_independent());
    }

    #[test]
    #[should_panic(expected = "bernoulli_rate")]
    fn validate_rejects_nan_rate() {
        FaultPlan::uniform(f64::NAN).validate();
    }

    #[test]
    #[should_panic(expected = "block_len")]
    fn validate_rejects_zero_burst_block() {
        FaultPlan::none().with_burst(0, 0.5).validate();
    }

    #[test]
    fn plan_round_trips_through_json() {
        let plan = FaultPlan::uniform(0.1)
            .with_outage(50, 20)
            .with_burst(32, 0.4)
            .with_permafail_users([3]);
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }
}
