//! The service itself: serves profile pages and paginated circle lists
//! from a generated network, with truncation, privacy, failures, and rate
//! limiting.

use crate::error::FetchError;
use crate::failure::user_coin;
use crate::fault::{FaultCause, FaultKey, FaultPlan};
use crate::page::{CirclePage, Direction, ProfilePage};
use crate::ratelimit::TokenBucket;
use gplus_obs::{Counter, Registry};
use gplus_synth::SynthNetwork;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Service behaviour knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceConfig {
    /// Maximum entries any public circle list exposes (§2.2: 10,000).
    pub circle_list_limit: usize,
    /// Entries per circle-list page.
    pub page_size: usize,
    /// Probability any single request attempt fails transiently.
    pub failure_rate: f64,
    /// Fraction of users whose circle lists are private (§2.1).
    pub private_list_fraction: f64,
    /// Token-bucket capacity (requests); `None` disables rate limiting.
    pub rate_limit_capacity: Option<f64>,
    /// Token-bucket refill per request tick.
    pub rate_limit_refill: f64,
    /// Seed for failure/privacy decisions (independent of the network
    /// seed so the same network can be served with different weather).
    pub seed: u64,
    /// Composable fault schedule (outages, bursts, permanent failures).
    /// `failure_rate` above is folded into the plan's Bernoulli mode when
    /// the plan does not set one itself, so legacy configs keep working.
    #[serde(default)]
    pub fault_plan: FaultPlan,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            circle_list_limit: 10_000,
            page_size: 1_000,
            failure_rate: 0.02,
            private_list_fraction: 0.03,
            rate_limit_capacity: None,
            rate_limit_refill: 1.0,
            seed: 0x5e71_11ce,
            fault_plan: FaultPlan::none(),
        }
    }
}

/// Request counters, all monotone.
#[derive(Debug, Default)]
pub struct ServiceStats {
    /// Profile pages served.
    pub profile_requests: AtomicU64,
    /// Circle pages served.
    pub circle_requests: AtomicU64,
    /// Requests rejected with [`FetchError::Transient`] (all causes).
    pub transient_failures: AtomicU64,
    /// Requests rejected with [`FetchError::RateLimited`].
    pub rate_limited: AtomicU64,
    /// Requests rejected with [`FetchError::PrivateList`].
    pub private_rejections: AtomicU64,
    /// Transient failures attributed to the i.i.d. Bernoulli mode.
    pub injected_bernoulli: AtomicU64,
    /// Transient failures attributed to scheduled outage windows.
    pub injected_outage: AtomicU64,
    /// Transient failures attributed to correlated bursts.
    pub injected_burst: AtomicU64,
    /// Transient failures attributed to permanently failing users.
    pub injected_permafail: AtomicU64,
}

impl ServiceStats {
    /// Total successful responses.
    pub fn successes(&self) -> u64 {
        self.profile_requests.load(Ordering::Relaxed)
            + self.circle_requests.load(Ordering::Relaxed)
    }
}

/// Pre-resolved metric handles mirroring [`ServiceStats`] into an
/// observability [`Registry`]. Resolving once at construction keeps the
/// per-request cost to a single atomic add (plus a relaxed gate load).
struct ServiceObs {
    profile_requests: Arc<Counter>,
    circle_requests: Arc<Counter>,
    rate_limited: Arc<Counter>,
    private_rejections: Arc<Counter>,
    fault_total: Arc<Counter>,
    fault_bernoulli: Arc<Counter>,
    fault_outage: Arc<Counter>,
    fault_burst: Arc<Counter>,
    fault_permafail: Arc<Counter>,
}

impl ServiceObs {
    fn resolve(registry: &Registry) -> Self {
        Self {
            profile_requests: registry.counter("service.requests.profile_count"),
            circle_requests: registry.counter("service.requests.circle_count"),
            rate_limited: registry.counter("service.ratelimit.rejected_count"),
            private_rejections: registry.counter("service.privacy.rejections_count"),
            fault_total: registry.counter("service.fault.injected.total_count"),
            fault_bernoulli: registry.counter("service.fault.injected.bernoulli_count"),
            fault_outage: registry.counter("service.fault.injected.outage_count"),
            fault_burst: registry.counter("service.fault.injected.burst_count"),
            fault_permafail: registry.counter("service.fault.injected.permafail_count"),
        }
    }
}

/// The surface a crawler needs: profile pages and paginated circle
/// lists. Implemented by [`GooglePlusService`] (direct calls) and
/// [`crate::WireService`] (every byte through the wire protocol), so the
/// crawler is agnostic to the transport — like the paper's crawler was to
/// Google's server stack.
pub trait SocialApi: Sync {
    /// Fetches a user's public profile page.
    fn fetch_profile(&self, user: u64) -> Result<crate::ProfilePage, crate::FetchError>;

    /// Fetches one page of a user's circle list.
    fn fetch_circle_page(
        &self,
        user: u64,
        direction: crate::Direction,
        page: usize,
    ) -> Result<crate::CirclePage, crate::FetchError>;
}

/// The simulated Google+ frontend over one synthetic network.
pub struct GooglePlusService {
    network: SynthNetwork,
    config: ServiceConfig,
    /// Effective fault plan: `config.fault_plan` with the legacy
    /// `failure_rate` folded into the Bernoulli mode.
    plan: FaultPlan,
    /// Global request sequence number (drives outage/burst modes).
    seq: AtomicU64,
    /// Per-user admitted-attempt counters (drive the Bernoulli and retry
    /// escape paths independently of request interleaving).
    attempts: Mutex<HashMap<u64, u64>>,
    bucket: Option<Mutex<TokenBucket>>,
    stats: ServiceStats,
    registry: Arc<Registry>,
    obs: ServiceObs,
}

impl GooglePlusService {
    /// Wraps a generated network in a service.
    ///
    /// # Panics
    /// Panics on nonsensical config (zero page size, limit smaller than a
    /// page, invalid probabilities, NaN/negative rate-limiter knobs).
    pub fn new(network: SynthNetwork, config: ServiceConfig) -> Self {
        Self::with_registry(network, config, Arc::clone(gplus_obs::global()))
    }

    /// Like [`Self::new`] but recording metrics into `registry` instead of
    /// the process-global one. Tests use this to make exact-equality
    /// assertions on counters without interference from parallel tests.
    ///
    /// # Panics
    /// Same validation as [`Self::new`].
    pub fn with_registry(
        network: SynthNetwork,
        config: ServiceConfig,
        registry: Arc<Registry>,
    ) -> Self {
        assert!(config.page_size > 0, "page_size must be positive");
        assert!(
            config.circle_list_limit >= config.page_size,
            "circle_list_limit must hold at least one page"
        );
        assert!(
            (0.0..=1.0).contains(&config.private_list_fraction),
            "private_list_fraction must be in [0,1]"
        );
        assert!((0.0..=1.0).contains(&config.failure_rate), "failure_rate must be in [0,1]");
        if let Some(cap) = config.rate_limit_capacity {
            // NaN fails every ordered comparison, so spell the checks as
            // "must be" assertions rather than reject-if
            assert!(cap > 0.0, "rate_limit_capacity must be positive, got {cap}");
            assert!(
                config.rate_limit_refill >= 0.0,
                "rate_limit_refill must be non-negative, got {}",
                config.rate_limit_refill
            );
        }
        let mut plan = config.fault_plan.clone();
        if plan.bernoulli_rate <= 0.0 {
            plan.bernoulli_rate = config.failure_rate;
        }
        plan.validate();
        let bucket = config
            .rate_limit_capacity
            .map(|cap| Mutex::new(TokenBucket::new(cap, config.rate_limit_refill)));
        let obs = ServiceObs::resolve(&registry);
        Self {
            network,
            config,
            plan,
            seq: AtomicU64::new(0),
            attempts: Mutex::new(HashMap::new()),
            bucket,
            stats: ServiceStats::default(),
            registry,
            obs,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Request statistics.
    pub fn stats(&self) -> &ServiceStats {
        &self.stats
    }

    /// The metrics registry this service records into.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Ground truth (for evaluation code only; the crawler must not peek).
    pub fn ground_truth(&self) -> &SynthNetwork {
        &self.network
    }

    /// Number of user ids the service could ever serve.
    pub fn user_count(&self) -> usize {
        self.network.node_count()
    }

    /// Whether this user's circle lists are private.
    pub fn lists_private(&self, user: u64) -> bool {
        // celebrities keep their follower lists public (that is how the
        // paper could rank them); ordinary users flip a deterministic coin
        if usize::try_from(user).is_ok_and(|u| u < self.network.population.celebrities.len()) {
            return false;
        }
        user_coin(self.config.seed, user, self.config.private_list_fraction)
    }

    /// Checked public-id → CSR-node conversion: `None` for any id outside
    /// the served network, including u64-scale ids that would wrap an
    /// unchecked `as u32`/`as usize` narrowing into some *other* user's
    /// node index.
    fn node_of(&self, user: u64) -> Option<u32> {
        let node = u32::try_from(user).ok()?;
        ((node as usize) < self.network.node_count()).then_some(node)
    }

    /// The effective fault plan the service runs under.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.plan
    }

    fn admit(&self, user: u64) -> Result<(), FetchError> {
        if let Some(bucket) = &self.bucket {
            if !bucket.lock().try_acquire() {
                self.stats.rate_limited.fetch_add(1, Ordering::Relaxed);
                self.obs.rate_limited.inc();
                return Err(FetchError::RateLimited);
            }
        }
        if self.plan.is_quiet() {
            return Ok(());
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let attempt = {
            let mut attempts = self.attempts.lock();
            let counter = attempts.entry(user).or_insert(0);
            let current = *counter;
            *counter += 1;
            current
        };
        if let Some(cause) = self.plan.decide(self.config.seed, FaultKey { seq, user, attempt })
        {
            let (counter, metric) = match cause {
                FaultCause::Bernoulli => {
                    (&self.stats.injected_bernoulli, &self.obs.fault_bernoulli)
                }
                FaultCause::Outage => (&self.stats.injected_outage, &self.obs.fault_outage),
                FaultCause::Burst => (&self.stats.injected_burst, &self.obs.fault_burst),
                FaultCause::Permafail => {
                    (&self.stats.injected_permafail, &self.obs.fault_permafail)
                }
            };
            counter.fetch_add(1, Ordering::Relaxed);
            metric.inc();
            self.obs.fault_total.inc();
            self.stats.transient_failures.fetch_add(1, Ordering::Relaxed);
            return Err(FetchError::Transient);
        }
        Ok(())
    }

    /// Fetches a user's public profile page.
    pub fn fetch_profile(&self, user: u64) -> Result<ProfilePage, FetchError> {
        let Some(node) = self.node_of(user) else {
            return Err(FetchError::NotFound);
        };
        self.admit(user)?;
        let profile = self.network.population.profile(node);
        let page = ProfilePage::from_profile(
            profile,
            self.network.graph.in_degree(node) as u64,
            self.network.graph.out_degree(node) as u64,
            self.lists_private(user),
        );
        self.stats.profile_requests.fetch_add(1, Ordering::Relaxed);
        self.obs.profile_requests.inc();
        Ok(page)
    }

    /// Fetches one page of a user's circle list.
    ///
    /// Pages beyond the data (or beyond the 10,000-entry cap) return an
    /// empty page with `has_more = false`, like paging past the end of a
    /// real listing.
    pub fn fetch_circle_page(
        &self,
        user: u64,
        direction: Direction,
        page: usize,
    ) -> Result<CirclePage, FetchError> {
        let Some(node) = self.node_of(user) else {
            return Err(FetchError::NotFound);
        };
        self.admit(user)?;
        if self.lists_private(user) {
            self.stats.private_rejections.fetch_add(1, Ordering::Relaxed);
            self.obs.private_rejections.inc();
            return Err(FetchError::PrivateList);
        }
        let full: &[u32] = match direction {
            Direction::InCircles => self.network.graph.in_neighbors(node),
            Direction::OutCircles => self.network.graph.out_neighbors(node),
        };
        let limit = self.config.circle_list_limit;
        let visible = &full[..full.len().min(limit)];
        let start = page.saturating_mul(self.config.page_size).min(visible.len());
        let end = (start + self.config.page_size).min(visible.len());
        let users: Vec<u64> = visible[start..end].iter().map(|&v| v as u64).collect();
        self.stats.circle_requests.fetch_add(1, Ordering::Relaxed);
        self.obs.circle_requests.inc();
        Ok(CirclePage {
            user_id: user,
            direction,
            users,
            page,
            has_more: end < visible.len(),
            truncated: full.len() > limit,
        })
    }

    /// Per-page retry budget of [`Self::fetch_full_circle_list`]. Large
    /// enough to ride out realistic failure rates, small enough that a
    /// permanently failing page (permafailed user, zero-refill limiter)
    /// surfaces its error instead of spinning forever.
    pub const FULL_LIST_RETRY_LIMIT: usize = 512;

    /// Convenience: fetches the *entire* visible circle list (all pages),
    /// retrying transient errors internally. Intended for tests and small
    /// tools; the real crawler drives paging itself.
    ///
    /// Each page gets at most [`Self::FULL_LIST_RETRY_LIMIT`] consecutive
    /// retryable failures before the last error is surfaced — a page that
    /// can never succeed (e.g. a rate limiter that never refills, or a
    /// permanently failing user) must not hang the caller.
    pub fn fetch_full_circle_list(
        &self,
        user: u64,
        direction: Direction,
    ) -> Result<Vec<u64>, FetchError> {
        let mut out = Vec::new();
        let mut page = 0;
        let mut failures_this_page = 0usize;
        loop {
            match self.fetch_circle_page(user, direction, page) {
                Ok(p) => {
                    out.extend_from_slice(&p.users);
                    if !p.has_more {
                        return Ok(out);
                    }
                    page += 1;
                    failures_this_page = 0;
                }
                Err(e) if e.is_retryable() => {
                    failures_this_page += 1;
                    if failures_this_page >= Self::FULL_LIST_RETRY_LIMIT {
                        return Err(e);
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }
}

impl SocialApi for GooglePlusService {
    fn fetch_profile(&self, user: u64) -> Result<ProfilePage, FetchError> {
        GooglePlusService::fetch_profile(self, user)
    }

    fn fetch_circle_page(
        &self,
        user: u64,
        direction: Direction,
        page: usize,
    ) -> Result<CirclePage, FetchError> {
        GooglePlusService::fetch_circle_page(self, user, direction, page)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gplus_synth::SynthConfig;

    fn service(n: usize, cfg: ServiceConfig) -> GooglePlusService {
        let net = SynthNetwork::generate(&SynthConfig::google_plus_2011(n, 77));
        GooglePlusService::new(net, cfg)
    }

    fn quiet_config() -> ServiceConfig {
        ServiceConfig {
            failure_rate: 0.0,
            private_list_fraction: 0.0,
            ..ServiceConfig::default()
        }
    }

    #[test]
    fn profile_page_matches_ground_truth() {
        let svc = service(2_000, quiet_config());
        let page = svc.fetch_profile(0).unwrap();
        assert_eq!(page.display_name, "Larry Page");
        let truth = svc.ground_truth();
        assert_eq!(page.declared_in_count, truth.graph.in_degree(0) as u64);
        assert_eq!(page.declared_out_count, truth.graph.out_degree(0) as u64);
    }

    #[test]
    fn unknown_user_not_found() {
        let svc = service(500, quiet_config());
        assert_eq!(svc.fetch_profile(10_000_000), Err(FetchError::NotFound));
        assert_eq!(
            svc.fetch_circle_page(10_000_000, Direction::InCircles, 0),
            Err(FetchError::NotFound)
        );
    }

    #[test]
    fn u64_scale_ids_are_not_found_never_wrapped() {
        // regression: `user as u32` / `user as usize` narrowing meant an
        // id like 2^32 wrapped to node 0 and served Larry Page's profile
        let svc = service(500, quiet_config());
        for user in [1u64 << 32, (1u64 << 32) + 3, u64::MAX, u32::MAX as u64 + 500] {
            assert_eq!(svc.fetch_profile(user), Err(FetchError::NotFound), "user {user}");
            assert_eq!(
                svc.fetch_circle_page(user, Direction::InCircles, 0),
                Err(FetchError::NotFound),
                "user {user}"
            );
        }
        // sanity: the same low 32 bits as a valid id still resolve
        assert!(svc.fetch_profile(0).is_ok());
    }

    #[test]
    fn paging_reconstructs_full_list() {
        let mut cfg = quiet_config();
        cfg.page_size = 7; // force multi-page lists
        cfg.circle_list_limit = 10_000;
        let svc = service(2_000, cfg);
        let truth = svc.ground_truth();
        for user in [0u64, 1, 300, 1500] {
            let got = svc.fetch_full_circle_list(user, Direction::OutCircles).unwrap();
            let expect: Vec<u64> =
                truth.graph.out_neighbors(user as u32).iter().map(|&v| v as u64).collect();
            assert_eq!(got, expect, "user {user}");
        }
    }

    #[test]
    fn truncation_at_circle_limit() {
        let mut cfg = quiet_config();
        cfg.circle_list_limit = 50;
        cfg.page_size = 50;
        let svc = service(3_000, cfg);
        let truth = svc.ground_truth();
        // node 0 (Larry Page) has way more than 50 followers
        let declared = truth.graph.in_degree(0);
        assert!(declared > 50, "test premise: top celebrity has >50 followers");
        let got = svc.fetch_full_circle_list(0, Direction::InCircles).unwrap();
        assert_eq!(got.len(), 50);
        let page = svc.fetch_circle_page(0, Direction::InCircles, 0).unwrap();
        assert!(page.truncated);
        // the profile page still declares the full count
        let profile = svc.fetch_profile(0).unwrap();
        assert_eq!(profile.declared_in_count, declared as u64);
    }

    #[test]
    fn page_past_end_is_empty() {
        let svc = service(500, quiet_config());
        let p = svc.fetch_circle_page(200, Direction::OutCircles, 9999).unwrap();
        assert!(p.users.is_empty());
        assert!(!p.has_more);
    }

    #[test]
    fn private_lists_reject_circles_but_serve_profile() {
        let mut cfg = quiet_config();
        cfg.private_list_fraction = 1.0; // everyone ordinary is private
        let svc = service(500, cfg);
        // celebrities stay public
        assert!(svc.fetch_circle_page(0, Direction::InCircles, 0).is_ok());
        // ordinary users are private
        let user = 200u64;
        assert!(svc.lists_private(user));
        assert_eq!(
            svc.fetch_circle_page(user, Direction::InCircles, 0),
            Err(FetchError::PrivateList)
        );
        assert!(svc.fetch_profile(user).is_ok());
        assert!(svc.fetch_profile(user).unwrap().lists_private);
        assert!(svc.stats().private_rejections.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn transient_failures_occur_and_retries_succeed() {
        let mut cfg = quiet_config();
        cfg.failure_rate = 0.3;
        let svc = service(500, cfg);
        let mut failures = 0;
        for user in 0..200u64 {
            loop {
                match svc.fetch_profile(user) {
                    Ok(_) => break,
                    Err(FetchError::Transient) => failures += 1,
                    Err(e) => panic!("unexpected error {e}"),
                }
            }
        }
        assert!(failures > 20, "expected many transient failures, got {failures}");
        assert_eq!(svc.stats().profile_requests.load(Ordering::Relaxed), 200);
    }

    #[test]
    fn rate_limiter_fires_when_configured() {
        let mut cfg = quiet_config();
        cfg.rate_limit_capacity = Some(10.0);
        cfg.rate_limit_refill = 0.5;
        let svc = service(500, cfg);
        let mut limited = 0;
        for user in 0..200u64 {
            if svc.fetch_profile(user % 400) == Err(FetchError::RateLimited) {
                limited += 1;
            }
        }
        assert!(limited > 50, "expected rate limiting, got {limited}");
        assert_eq!(svc.stats().rate_limited.load(Ordering::Relaxed), limited);
    }

    #[test]
    fn deterministic_across_instances() {
        let cfg = ServiceConfig { failure_rate: 0.2, ..ServiceConfig::default() };
        let a = service(500, cfg.clone());
        let b = service(500, cfg);
        let run = |svc: &GooglePlusService| {
            (0..300u64).map(|u| svc.fetch_profile(u).is_ok()).collect::<Vec<bool>>()
        };
        assert_eq!(run(&a), run(&b));
    }

    #[test]
    #[should_panic(expected = "page_size")]
    fn rejects_zero_page_size() {
        let mut cfg = quiet_config();
        cfg.page_size = 0;
        let _ = service(150, cfg);
    }

    #[test]
    #[should_panic(expected = "rate_limit_capacity must be positive")]
    fn rejects_non_positive_rate_limit_capacity() {
        let mut cfg = quiet_config();
        cfg.rate_limit_capacity = Some(0.0);
        let _ = service(150, cfg);
    }

    #[test]
    #[should_panic(expected = "rate_limit_capacity must be positive")]
    fn rejects_nan_rate_limit_capacity() {
        let mut cfg = quiet_config();
        cfg.rate_limit_capacity = Some(f64::NAN);
        let _ = service(150, cfg);
    }

    #[test]
    #[should_panic(expected = "rate_limit_refill must be non-negative")]
    fn rejects_negative_rate_limit_refill() {
        let mut cfg = quiet_config();
        cfg.rate_limit_capacity = Some(10.0);
        cfg.rate_limit_refill = -1.0;
        let _ = service(150, cfg);
    }

    #[test]
    #[should_panic(expected = "rate_limit_refill must be non-negative")]
    fn rejects_nan_rate_limit_refill() {
        let mut cfg = quiet_config();
        cfg.rate_limit_capacity = Some(10.0);
        cfg.rate_limit_refill = f64::NAN;
        let _ = service(150, cfg);
    }

    #[test]
    fn full_list_fetch_terminates_under_zero_refill_limiter() {
        // regression: a token bucket that never refills makes every
        // request after the first few RateLimited forever; the convenience
        // helper used to spin on `continue` without bound
        let mut cfg = quiet_config();
        cfg.rate_limit_capacity = Some(2.0);
        cfg.rate_limit_refill = 0.0;
        let svc = service(2_000, cfg);
        // burn the bucket
        let _ = svc.fetch_profile(0);
        let _ = svc.fetch_profile(1);
        let got = svc.fetch_full_circle_list(0, Direction::InCircles);
        assert_eq!(got, Err(FetchError::RateLimited));
    }

    #[test]
    fn full_list_fetch_surfaces_permanent_failure() {
        let mut cfg = quiet_config();
        cfg.fault_plan = crate::fault::FaultPlan::none().with_permafail_users([5]);
        let svc = service(500, cfg);
        assert_eq!(
            svc.fetch_full_circle_list(5, Direction::OutCircles),
            Err(FetchError::Transient)
        );
        assert!(
            svc.stats().injected_permafail.load(Ordering::Relaxed)
                >= GooglePlusService::FULL_LIST_RETRY_LIMIT as u64
        );
    }

    #[test]
    fn outage_window_fails_requests_then_recovers() {
        let mut cfg = quiet_config();
        cfg.fault_plan = crate::fault::FaultPlan::none().with_outage(0, 10);
        let svc = service(500, cfg);
        for _ in 0..10 {
            assert_eq!(svc.fetch_profile(3), Err(FetchError::Transient));
        }
        assert!(svc.fetch_profile(3).is_ok());
        assert_eq!(svc.stats().injected_outage.load(Ordering::Relaxed), 10);
        assert_eq!(svc.stats().transient_failures.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn legacy_failure_rate_folds_into_plan() {
        let mut cfg = quiet_config();
        cfg.failure_rate = 0.3;
        let svc = service(200, cfg);
        assert_eq!(svc.fault_plan().bernoulli_rate, 0.3);
        // explicit plan rate wins over the legacy knob
        let mut cfg = quiet_config();
        cfg.failure_rate = 0.3;
        cfg.fault_plan = crate::fault::FaultPlan::uniform(0.7);
        let svc = service(200, cfg);
        assert_eq!(svc.fault_plan().bernoulli_rate, 0.7);
    }

    #[test]
    fn metrics_mirror_stats_exactly() {
        // a dedicated registry sees exactly what ServiceStats sees; the
        // process-global registry would only support >= assertions because
        // parallel tests share it
        let net = SynthNetwork::generate(&SynthConfig::google_plus_2011(500, 77));
        let registry = Arc::new(Registry::new());
        let mut cfg = quiet_config();
        cfg.failure_rate = 0.3;
        cfg.private_list_fraction = 0.4;
        let svc = GooglePlusService::with_registry(net, cfg, Arc::clone(&registry));
        for user in 0..300u64 {
            let _ = svc.fetch_profile(user);
            let _ = svc.fetch_circle_page(user, Direction::InCircles, 0);
        }
        let snap = registry.snapshot();
        let stats = svc.stats();
        let pairs = [
            ("service.requests.profile_count", &stats.profile_requests),
            ("service.requests.circle_count", &stats.circle_requests),
            ("service.privacy.rejections_count", &stats.private_rejections),
            ("service.fault.injected.bernoulli_count", &stats.injected_bernoulli),
            ("service.fault.injected.total_count", &stats.transient_failures),
        ];
        for (name, stat) in pairs {
            assert_eq!(snap.counter(name), stat.load(Ordering::Relaxed), "{name}");
        }
        assert!(snap.counter("service.requests.profile_count") > 0);
        assert!(snap.counter("service.fault.injected.bernoulli_count") > 0);
    }

    #[test]
    fn bernoulli_failures_are_per_user_attempt_keyed() {
        // two services, same seed: interleave requests differently; the
        // outcome for (user, attempt) must match regardless of order
        let mut cfg = quiet_config();
        cfg.failure_rate = 0.4;
        let a = service(500, cfg.clone());
        let b = service(500, cfg);
        // a: users in order, two passes; b: pairs of attempts per user
        let mut outcomes_a = std::collections::HashMap::new();
        for pass in 0..2u64 {
            for user in 0..100u64 {
                outcomes_a.insert((user, pass), a.fetch_profile(user).is_ok());
            }
        }
        for user in 0..100u64 {
            for pass in 0..2u64 {
                let ok = b.fetch_profile(user).is_ok();
                assert_eq!(outcomes_a[&(user, pass)], ok, "user {user} attempt {pass}");
            }
        }
    }
}
