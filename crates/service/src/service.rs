//! The service itself: serves profile pages and paginated circle lists
//! from a generated network, with truncation, privacy, failures, and rate
//! limiting.

use crate::error::FetchError;
use crate::failure::{user_coin, FailureInjector};
use crate::page::{CirclePage, Direction, ProfilePage};
use crate::ratelimit::TokenBucket;
use gplus_synth::SynthNetwork;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Service behaviour knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceConfig {
    /// Maximum entries any public circle list exposes (§2.2: 10,000).
    pub circle_list_limit: usize,
    /// Entries per circle-list page.
    pub page_size: usize,
    /// Probability any single request attempt fails transiently.
    pub failure_rate: f64,
    /// Fraction of users whose circle lists are private (§2.1).
    pub private_list_fraction: f64,
    /// Token-bucket capacity (requests); `None` disables rate limiting.
    pub rate_limit_capacity: Option<f64>,
    /// Token-bucket refill per request tick.
    pub rate_limit_refill: f64,
    /// Seed for failure/privacy decisions (independent of the network
    /// seed so the same network can be served with different weather).
    pub seed: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            circle_list_limit: 10_000,
            page_size: 1_000,
            failure_rate: 0.02,
            private_list_fraction: 0.03,
            rate_limit_capacity: None,
            rate_limit_refill: 1.0,
            seed: 0x5e71_11ce,
        }
    }
}

/// Request counters, all monotone.
#[derive(Debug, Default)]
pub struct ServiceStats {
    /// Profile pages served.
    pub profile_requests: AtomicU64,
    /// Circle pages served.
    pub circle_requests: AtomicU64,
    /// Requests rejected with [`FetchError::Transient`].
    pub transient_failures: AtomicU64,
    /// Requests rejected with [`FetchError::RateLimited`].
    pub rate_limited: AtomicU64,
    /// Requests rejected with [`FetchError::PrivateList`].
    pub private_rejections: AtomicU64,
}

impl ServiceStats {
    /// Total successful responses.
    pub fn successes(&self) -> u64 {
        self.profile_requests.load(Ordering::Relaxed)
            + self.circle_requests.load(Ordering::Relaxed)
    }
}

/// The surface a crawler needs: profile pages and paginated circle
/// lists. Implemented by [`GooglePlusService`] (direct calls) and
/// [`crate::WireService`] (every byte through the wire protocol), so the
/// crawler is agnostic to the transport — like the paper's crawler was to
/// Google's server stack.
pub trait SocialApi: Sync {
    /// Fetches a user's public profile page.
    fn fetch_profile(&self, user: u64) -> Result<crate::ProfilePage, crate::FetchError>;

    /// Fetches one page of a user's circle list.
    fn fetch_circle_page(
        &self,
        user: u64,
        direction: crate::Direction,
        page: usize,
    ) -> Result<crate::CirclePage, crate::FetchError>;
}

/// The simulated Google+ frontend over one synthetic network.
pub struct GooglePlusService {
    network: SynthNetwork,
    config: ServiceConfig,
    injector: FailureInjector,
    nonce: AtomicU64,
    bucket: Option<Mutex<TokenBucket>>,
    stats: ServiceStats,
}

impl GooglePlusService {
    /// Wraps a generated network in a service.
    ///
    /// # Panics
    /// Panics on nonsensical config (zero page size, limit smaller than a
    /// page, invalid probabilities).
    pub fn new(network: SynthNetwork, config: ServiceConfig) -> Self {
        assert!(config.page_size > 0, "page_size must be positive");
        assert!(
            config.circle_list_limit >= config.page_size,
            "circle_list_limit must hold at least one page"
        );
        assert!(
            (0.0..=1.0).contains(&config.private_list_fraction),
            "private_list_fraction must be in [0,1]"
        );
        let injector = FailureInjector::new(config.seed, config.failure_rate);
        let bucket = config
            .rate_limit_capacity
            .map(|cap| Mutex::new(TokenBucket::new(cap, config.rate_limit_refill)));
        Self {
            network,
            config,
            injector,
            nonce: AtomicU64::new(0),
            bucket,
            stats: ServiceStats::default(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Request statistics.
    pub fn stats(&self) -> &ServiceStats {
        &self.stats
    }

    /// Ground truth (for evaluation code only; the crawler must not peek).
    pub fn ground_truth(&self) -> &SynthNetwork {
        &self.network
    }

    /// Number of user ids the service could ever serve.
    pub fn user_count(&self) -> usize {
        self.network.node_count()
    }

    /// Whether this user's circle lists are private.
    pub fn lists_private(&self, user: u64) -> bool {
        // celebrities keep their follower lists public (that is how the
        // paper could rank them); ordinary users flip a deterministic coin
        if (user as usize) < self.network.population.celebrities.len() {
            return false;
        }
        user_coin(self.config.seed, user, self.config.private_list_fraction)
    }

    fn admit(&self, user: u64) -> Result<(), FetchError> {
        if let Some(bucket) = &self.bucket {
            if !bucket.lock().try_acquire() {
                self.stats.rate_limited.fetch_add(1, Ordering::Relaxed);
                return Err(FetchError::RateLimited);
            }
        }
        let nonce = self.nonce.fetch_add(1, Ordering::Relaxed);
        if self.injector.fails(user, nonce) {
            self.stats.transient_failures.fetch_add(1, Ordering::Relaxed);
            return Err(FetchError::Transient);
        }
        Ok(())
    }

    /// Fetches a user's public profile page.
    pub fn fetch_profile(&self, user: u64) -> Result<ProfilePage, FetchError> {
        if user as usize >= self.network.node_count() {
            return Err(FetchError::NotFound);
        }
        self.admit(user)?;
        let node = user as u32;
        let profile = self.network.population.profile(node);
        let page = ProfilePage::from_profile(
            profile,
            self.network.graph.in_degree(node) as u64,
            self.network.graph.out_degree(node) as u64,
            self.lists_private(user),
        );
        self.stats.profile_requests.fetch_add(1, Ordering::Relaxed);
        Ok(page)
    }

    /// Fetches one page of a user's circle list.
    ///
    /// Pages beyond the data (or beyond the 10,000-entry cap) return an
    /// empty page with `has_more = false`, like paging past the end of a
    /// real listing.
    pub fn fetch_circle_page(
        &self,
        user: u64,
        direction: Direction,
        page: usize,
    ) -> Result<CirclePage, FetchError> {
        if user as usize >= self.network.node_count() {
            return Err(FetchError::NotFound);
        }
        self.admit(user)?;
        if self.lists_private(user) {
            self.stats.private_rejections.fetch_add(1, Ordering::Relaxed);
            return Err(FetchError::PrivateList);
        }
        let node = user as u32;
        let full: &[u32] = match direction {
            Direction::InCircles => self.network.graph.in_neighbors(node),
            Direction::OutCircles => self.network.graph.out_neighbors(node),
        };
        let limit = self.config.circle_list_limit;
        let visible = &full[..full.len().min(limit)];
        let start = page.saturating_mul(self.config.page_size).min(visible.len());
        let end = (start + self.config.page_size).min(visible.len());
        let users: Vec<u64> = visible[start..end].iter().map(|&v| v as u64).collect();
        self.stats.circle_requests.fetch_add(1, Ordering::Relaxed);
        Ok(CirclePage {
            user_id: user,
            direction,
            users,
            page,
            has_more: end < visible.len(),
            truncated: full.len() > limit,
        })
    }

    /// Convenience: fetches the *entire* visible circle list (all pages),
    /// retrying transient errors internally. Intended for tests and small
    /// tools; the real crawler drives paging itself.
    pub fn fetch_full_circle_list(
        &self,
        user: u64,
        direction: Direction,
    ) -> Result<Vec<u64>, FetchError> {
        let mut out = Vec::new();
        let mut page = 0;
        loop {
            match self.fetch_circle_page(user, direction, page) {
                Ok(p) => {
                    out.extend_from_slice(&p.users);
                    if !p.has_more {
                        return Ok(out);
                    }
                    page += 1;
                }
                Err(e) if e.is_retryable() => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

impl SocialApi for GooglePlusService {
    fn fetch_profile(&self, user: u64) -> Result<ProfilePage, FetchError> {
        GooglePlusService::fetch_profile(self, user)
    }

    fn fetch_circle_page(
        &self,
        user: u64,
        direction: Direction,
        page: usize,
    ) -> Result<CirclePage, FetchError> {
        GooglePlusService::fetch_circle_page(self, user, direction, page)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gplus_synth::SynthConfig;

    fn service(n: usize, cfg: ServiceConfig) -> GooglePlusService {
        let net = SynthNetwork::generate(&SynthConfig::google_plus_2011(n, 77));
        GooglePlusService::new(net, cfg)
    }

    fn quiet_config() -> ServiceConfig {
        ServiceConfig {
            failure_rate: 0.0,
            private_list_fraction: 0.0,
            ..ServiceConfig::default()
        }
    }

    #[test]
    fn profile_page_matches_ground_truth() {
        let svc = service(2_000, quiet_config());
        let page = svc.fetch_profile(0).unwrap();
        assert_eq!(page.display_name, "Larry Page");
        let truth = svc.ground_truth();
        assert_eq!(page.declared_in_count, truth.graph.in_degree(0) as u64);
        assert_eq!(page.declared_out_count, truth.graph.out_degree(0) as u64);
    }

    #[test]
    fn unknown_user_not_found() {
        let svc = service(500, quiet_config());
        assert_eq!(svc.fetch_profile(10_000_000), Err(FetchError::NotFound));
        assert_eq!(
            svc.fetch_circle_page(10_000_000, Direction::InCircles, 0),
            Err(FetchError::NotFound)
        );
    }

    #[test]
    fn paging_reconstructs_full_list() {
        let mut cfg = quiet_config();
        cfg.page_size = 7; // force multi-page lists
        cfg.circle_list_limit = 10_000;
        let svc = service(2_000, cfg);
        let truth = svc.ground_truth();
        for user in [0u64, 1, 300, 1500] {
            let got = svc.fetch_full_circle_list(user, Direction::OutCircles).unwrap();
            let expect: Vec<u64> =
                truth.graph.out_neighbors(user as u32).iter().map(|&v| v as u64).collect();
            assert_eq!(got, expect, "user {user}");
        }
    }

    #[test]
    fn truncation_at_circle_limit() {
        let mut cfg = quiet_config();
        cfg.circle_list_limit = 50;
        cfg.page_size = 50;
        let svc = service(3_000, cfg);
        let truth = svc.ground_truth();
        // node 0 (Larry Page) has way more than 50 followers
        let declared = truth.graph.in_degree(0);
        assert!(declared > 50, "test premise: top celebrity has >50 followers");
        let got = svc.fetch_full_circle_list(0, Direction::InCircles).unwrap();
        assert_eq!(got.len(), 50);
        let page = svc.fetch_circle_page(0, Direction::InCircles, 0).unwrap();
        assert!(page.truncated);
        // the profile page still declares the full count
        let profile = svc.fetch_profile(0).unwrap();
        assert_eq!(profile.declared_in_count, declared as u64);
    }

    #[test]
    fn page_past_end_is_empty() {
        let svc = service(500, quiet_config());
        let p = svc.fetch_circle_page(200, Direction::OutCircles, 9999).unwrap();
        assert!(p.users.is_empty());
        assert!(!p.has_more);
    }

    #[test]
    fn private_lists_reject_circles_but_serve_profile() {
        let mut cfg = quiet_config();
        cfg.private_list_fraction = 1.0; // everyone ordinary is private
        let svc = service(500, cfg);
        // celebrities stay public
        assert!(svc.fetch_circle_page(0, Direction::InCircles, 0).is_ok());
        // ordinary users are private
        let user = 200u64;
        assert!(svc.lists_private(user));
        assert_eq!(
            svc.fetch_circle_page(user, Direction::InCircles, 0),
            Err(FetchError::PrivateList)
        );
        assert!(svc.fetch_profile(user).is_ok());
        assert!(svc.fetch_profile(user).unwrap().lists_private);
        assert!(svc.stats().private_rejections.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn transient_failures_occur_and_retries_succeed() {
        let mut cfg = quiet_config();
        cfg.failure_rate = 0.3;
        let svc = service(500, cfg);
        let mut failures = 0;
        for user in 0..200u64 {
            loop {
                match svc.fetch_profile(user) {
                    Ok(_) => break,
                    Err(FetchError::Transient) => failures += 1,
                    Err(e) => panic!("unexpected error {e}"),
                }
            }
        }
        assert!(failures > 20, "expected many transient failures, got {failures}");
        assert_eq!(svc.stats().profile_requests.load(Ordering::Relaxed), 200);
    }

    #[test]
    fn rate_limiter_fires_when_configured() {
        let mut cfg = quiet_config();
        cfg.rate_limit_capacity = Some(10.0);
        cfg.rate_limit_refill = 0.5;
        let svc = service(500, cfg);
        let mut limited = 0;
        for user in 0..200u64 {
            if svc.fetch_profile(user % 400) == Err(FetchError::RateLimited) {
                limited += 1;
            }
        }
        assert!(limited > 50, "expected rate limiting, got {limited}");
        assert_eq!(svc.stats().rate_limited.load(Ordering::Relaxed), limited);
    }

    #[test]
    fn deterministic_across_instances() {
        let cfg = ServiceConfig { failure_rate: 0.2, ..ServiceConfig::default() };
        let a = service(500, cfg.clone());
        let b = service(500, cfg);
        let run = |svc: &GooglePlusService| {
            (0..300u64).map(|u| svc.fetch_profile(u).is_ok()).collect::<Vec<bool>>()
        };
        assert_eq!(run(&a), run(&b));
    }

    #[test]
    #[should_panic(expected = "page_size")]
    fn rejects_zero_page_size() {
        let mut cfg = quiet_config();
        cfg.page_size = 0;
        let _ = service(150, cfg);
    }
}
