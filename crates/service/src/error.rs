//! Error surface of the simulated service — the failure modes a real HTTP
//! crawl sees.

use serde::{Deserialize, Serialize};

/// Why a fetch failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FetchError {
    /// No such user id (dangling references never happen from our own
    /// service, but a robust crawler must handle the arm).
    NotFound,
    /// Transient server-side failure (5xx); retrying usually succeeds.
    Transient,
    /// The client exhausted its request budget; back off and retry.
    RateLimited,
    /// The page exists but this circle list is private (§2.1) — not
    /// retryable; edges must come from the other endpoint.
    PrivateList,
}

impl FetchError {
    /// Whether a retry can succeed.
    pub fn is_retryable(self) -> bool {
        matches!(self, FetchError::Transient | FetchError::RateLimited)
    }
}

impl std::fmt::Display for FetchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FetchError::NotFound => "user not found",
            FetchError::Transient => "transient server failure",
            FetchError::RateLimited => "rate limited",
            FetchError::PrivateList => "circle list is private",
        };
        f.write_str(s)
    }
}

impl std::error::Error for FetchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryability() {
        assert!(FetchError::Transient.is_retryable());
        assert!(FetchError::RateLimited.is_retryable());
        assert!(!FetchError::NotFound.is_retryable());
        assert!(!FetchError::PrivateList.is_retryable());
    }

    #[test]
    fn display_strings() {
        assert_eq!(FetchError::PrivateList.to_string(), "circle list is private");
        assert_eq!(FetchError::RateLimited.to_string(), "rate limited");
    }
}
