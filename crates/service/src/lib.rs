//! Simulated Google+ frontend.
//!
//! The paper's crawler (§2.2) retrieved "publicly available user profile
//! pages" over HTTP from 11 machines between 2011-11-11 and 2011-12-27.
//! That service no longer exists; this crate is the stand-in the crawler
//! crate runs against. It serves, from a generated [`SynthNetwork`]:
//!
//! * **profile pages** — the public view of a profile (only fields the user
//!   shared; §3.1's five-level visibility collapses to public-or-not for an
//!   anonymous crawler) plus the *declared* in/out circle counts shown on
//!   the page;
//! * **paginated circle lists** — both "Have user in circles" (followers)
//!   and "In user's circles" (followees), truncated at 10,000 entries
//!   ("There is a limit on the maximum number of users that could appear in
//!   any public circle, which is 10,000 users", §2.2) — the truncation that
//!   forces the paper's 1.6% lost-edge estimate;
//! * **private circle lists** — a configurable fraction of users set their
//!   lists private (§2.1: "The user has the option to set these lists as
//!   private"), so their edges are only recoverable from the other side —
//!   the reason the paper crawled bidirectionally;
//! * **failure injection and rate limiting** — deterministic transient
//!   failures and a token-bucket limiter, so the crawler's retry/backoff
//!   machinery has something real to do.
//!
//! Everything is deterministic given the service seed, and thread-safe: the
//! crawler's simulated "11 machines" hit it concurrently.
//!
//! [`SynthNetwork`]: gplus_synth::SynthNetwork

pub mod error;
pub mod failure;
pub mod fault;
pub mod page;
pub mod query;
pub mod ratelimit;
pub mod service;
pub mod wire;

pub use error::FetchError;
pub use fault::{FaultCause, FaultKey, FaultPlan, OutageWindow};
pub use page::{CirclePage, Direction, ProfilePage};
pub use query::{
    ProfileSummary, QueryError, QueryRequest, QueryResponse, RankMetric, RankedUser,
};
pub use ratelimit::TokenBucket;
pub use service::{GooglePlusService, ServiceConfig, ServiceStats, SocialApi};
pub use wire::{CorruptionPlan, Request, Response, WireError, WireService};
