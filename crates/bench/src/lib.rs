//! Shared scaffolding for the benchmark harness.
//!
//! Every bench target regenerates one of the paper's tables or figures:
//! it *prints the artifact once* (so `cargo bench` output can be read
//! against the paper) and then times the computation with Criterion.
//!
//! The network scale defaults to 20,000 users and can be raised with the
//! `GPLUS_BENCH_N` environment variable; the seed with `GPLUS_BENCH_SEED`.

use criterion::Criterion;
use gplus_core::dataset::GroundTruthDataset;
use gplus_synth::{SynthConfig, SynthNetwork};
use std::sync::OnceLock;

/// Benchmark network size (env `GPLUS_BENCH_N`, default 20,000).
pub fn bench_n() -> usize {
    std::env::var("GPLUS_BENCH_N").ok().and_then(|s| s.parse().ok()).unwrap_or(20_000)
}

/// Benchmark seed (env `GPLUS_BENCH_SEED`, default 2012).
pub fn bench_seed() -> u64 {
    std::env::var("GPLUS_BENCH_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(2012)
}

/// The shared Google+-calibrated network, generated once per process.
pub fn network() -> &'static SynthNetwork {
    static NET: OnceLock<SynthNetwork> = OnceLock::new();
    NET.get_or_init(|| {
        let n = bench_n();
        eprintln!("[gplus-bench] generating network: {n} users, seed {}", bench_seed());
        SynthNetwork::generate(&SynthConfig::google_plus_2011(n, bench_seed()))
    })
}

/// Ground-truth dataset view over [`network`].
pub fn dataset() -> GroundTruthDataset<'static> {
    GroundTruthDataset::new(network())
}

/// Criterion tuned for heavyweight graph analyses: few samples, short
/// measurement windows.
pub fn criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(8))
        .warm_up_time(std::time::Duration::from_secs(2))
        .configure_from_args()
}
