//! Regenerates Figure 8 (per-country profile openness).

use criterion::{criterion_group, criterion_main, Criterion};
use gplus_bench::{criterion as cfg, dataset};
use gplus_core::experiments::fig8;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let data = dataset();
    println!("{}", fig8::render(&fig8::run(&data)));
    c.bench_function("fig8/openness_by_country", |b| b.iter(|| black_box(fig8::run(&data))));
}

criterion_group! { name = benches; config = cfg(); targets = bench }
criterion_main!(benches);
