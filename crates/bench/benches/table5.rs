//! Regenerates Table 5 (per-country top-user occupations + Jaccard).

use criterion::{criterion_group, criterion_main, Criterion};
use gplus_bench::{criterion as cfg, dataset};
use gplus_core::experiments::table5;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let data = dataset();
    println!("{}", table5::render(&table5::run(&data)));
    c.bench_function("table5/occupations_and_jaccard", |b| {
        b.iter(|| black_box(table5::run(&data)))
    });
}

criterion_group! { name = benches; config = cfg(); targets = bench }
criterion_main!(benches);
