//! Regenerates Table 4 (cross-network topology comparison): measures the
//! Google+ row, prints it beside the literature rows, and also times the
//! twitter-like / facebook-like preset comparisons.

use criterion::{criterion_group, criterion_main, Criterion};
use gplus_bench::{bench_seed, criterion as cfg, dataset};
use gplus_core::dataset::GroundTruthDataset;
use gplus_core::experiments::table4;
use gplus_graph::reciprocity;
use gplus_synth::{SynthConfig, SynthNetwork};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let data = dataset();
    let params = table4::Table4Params { path_samples: 200, ..Default::default() };
    println!("{}", table4::render(&table4::run(&data, &params)));

    // simulated comparison rows: reciprocity under the two presets
    let tw = SynthNetwork::generate(&SynthConfig::twitter_like(10_000, bench_seed()));
    let fb = SynthNetwork::generate(&SynthConfig::facebook_like(10_000, bench_seed()));
    println!(
        "simulated comparison rows: twitter-like reciprocity {:.1}% (paper 22.1%), \
         facebook-like {:.1}% (paper 100%)\n",
        reciprocity::global_reciprocity(&tw.graph) * 100.0,
        reciprocity::global_reciprocity(&fb.graph) * 100.0
    );

    c.bench_function("table4/google_plus_row", |b| {
        b.iter(|| black_box(table4::run(&data, &params)))
    });
    let tw_data = GroundTruthDataset::new(&tw);
    c.bench_function("table4/twitter_like_row_10k", |b| {
        b.iter(|| black_box(table4::run(&tw_data, &params)))
    });
}

criterion_group! { name = benches; config = cfg(); targets = bench }
criterion_main!(benches);
