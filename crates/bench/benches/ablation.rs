//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * Kosaraju (the paper's two-DFS) vs Tarjan SCC;
//! * exact vs sampled clustering coefficient (the paper sampled 1M nodes)
//!   with the estimator error printed;
//! * fixed-k vs the paper's adaptive path-length schedule, with the KS
//!   trajectory printed;
//! * CSR adjacency vs a naive `Vec<Vec<_>>` adjacency for BFS.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gplus_bench::{criterion as cfg, network};
use gplus_graph::{bfs, clustering, paths, scc, CsrGraph, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;
use std::hint::black_box;

/// Naive adjacency-list graph, the baseline CSR replaced.
struct VecGraph {
    out: Vec<Vec<NodeId>>,
}

impl VecGraph {
    fn from_csr(g: &CsrGraph) -> Self {
        Self { out: g.nodes().map(|u| g.out_neighbors(u).to_vec()).collect() }
    }

    fn bfs_levels(&self, source: NodeId) -> u32 {
        let mut dist = vec![u32::MAX; self.out.len()];
        let mut q = VecDeque::new();
        dist[source as usize] = 0;
        q.push_back(source);
        let mut ecc = 0;
        while let Some(u) = q.pop_front() {
            for &v in &self.out[u as usize] {
                if dist[v as usize] == u32::MAX {
                    dist[v as usize] = dist[u as usize] + 1;
                    ecc = ecc.max(dist[v as usize]);
                    q.push_back(v);
                }
            }
        }
        ecc
    }
}

fn bench(c: &mut Criterion) {
    let g = &network().graph;

    // --- SCC: Kosaraju vs Tarjan ---
    let a = scc::kosaraju(g);
    let b2 = scc::tarjan(g);
    assert!(scc::same_partition(&a, &b2), "algorithms must agree before timing");
    c.bench_function("ablation/scc_kosaraju", |b| b.iter(|| black_box(scc::kosaraju(g))));
    c.bench_function("ablation/scc_tarjan", |b| b.iter(|| black_box(scc::tarjan(g))));

    // --- clustering: exact vs sampled, with estimator error ---
    let exact = clustering::average_cc(g).unwrap_or(0.0);
    for sample in [2_000usize, 10_000] {
        let mut rng = StdRng::seed_from_u64(7);
        let cc = clustering::sampled_cc(g, sample, &mut rng);
        let est = cc.iter().sum::<f64>() / cc.len().max(1) as f64;
        println!(
            "sampled CC ({sample} nodes): {est:.4} vs exact {exact:.4} \
             (error {:+.4})",
            est - exact
        );
    }
    c.bench_function("ablation/cc_exact", |b| b.iter(|| black_box(clustering::average_cc(g))));
    let mut group = c.benchmark_group("ablation/cc_sampled");
    for sample in [2_000usize, 10_000] {
        group.bench_with_input(BenchmarkId::from_parameter(sample), &sample, |b, &s| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(7);
                black_box(clustering::sampled_cc(g, s, &mut rng))
            })
        });
    }
    group.finish();

    // --- paths: fixed-k vs adaptive schedule ---
    let mut rng = StdRng::seed_from_u64(9);
    let adaptive = paths::adaptive_path_lengths(g, 100, 100, 800, 0.02, &mut rng);
    println!(
        "adaptive path schedule: used {} sources, converged early = {}, KS trajectory {:?}",
        adaptive.distribution.sources,
        adaptive.converged_early,
        adaptive
            .ks_trajectory
            .iter()
            .map(|d| (d * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    );
    c.bench_function("ablation/paths_fixed_k400", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(9);
            black_box(paths::sampled_path_lengths(g, 400, &mut rng))
        })
    });
    c.bench_function("ablation/paths_adaptive", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(9);
            black_box(paths::adaptive_path_lengths(g, 100, 100, 800, 0.02, &mut rng))
        })
    });

    // --- BFS: CSR vs naive Vec<Vec> adjacency ---
    let vec_graph = VecGraph::from_csr(g);
    let mut scratch = bfs::BfsScratch::new(g.node_count());
    c.bench_function("ablation/bfs_csr", |b| {
        b.iter(|| black_box(bfs::levels_with_scratch(g, 0, &mut scratch).eccentricity))
    });
    c.bench_function("ablation/bfs_vecvec", |b| b.iter(|| black_box(vec_graph.bfs_levels(0))));
}

criterion_group! { name = benches; config = cfg(); targets = bench }
criterion_main!(benches);
