//! Regenerates Table 1 (top-20 users by in-degree) and times the ranking.

use criterion::{criterion_group, criterion_main, Criterion};
use gplus_bench::{criterion as cfg, dataset};
use gplus_core::experiments::table1;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let data = dataset();
    println!("{}", table1::render(&table1::run(&data, 20)));
    c.bench_function("table1/top20_by_in_degree", |b| {
        b.iter(|| black_box(table1::run(&data, 20)))
    });
}

criterion_group! { name = benches; config = cfg(); targets = bench }
criterion_main!(benches);
