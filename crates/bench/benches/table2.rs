//! Regenerates Table 2 (public attribute availability) and times the scan.

use criterion::{criterion_group, criterion_main, Criterion};
use gplus_bench::{criterion as cfg, dataset};
use gplus_core::experiments::table2;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let data = dataset();
    println!("{}", table2::render(&table2::run(&data)));
    c.bench_function("table2/attribute_availability", |b| {
        b.iter(|| black_box(table2::run(&data)))
    });
}

criterion_group! { name = benches; config = cfg(); targets = bench }
criterion_main!(benches);
