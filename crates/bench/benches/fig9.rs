//! Regenerates Figure 9 (path miles).

use criterion::{criterion_group, criterion_main, Criterion};
use gplus_bench::{criterion as cfg, dataset};
use gplus_core::experiments::fig9;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let data = dataset();
    let params = fig9::Fig9Params { max_pairs: 60_000, seed: 5 };
    println!("{}", fig9::render(&fig9::run(&data, &params)));
    c.bench_function("fig9/path_miles", |b| b.iter(|| black_box(fig9::run(&data, &params))));
}

criterion_group! { name = benches; config = cfg(); targets = bench }
criterion_main!(benches);
