//! Regenerates Table 3 (all users vs tel-users) and times the comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use gplus_bench::{criterion as cfg, dataset};
use gplus_core::experiments::table3;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let data = dataset();
    println!("{}", table3::render(&table3::run(&data)));
    c.bench_function("table3/tel_user_comparison", |b| {
        b.iter(|| black_box(table3::run(&data)))
    });
}

criterion_group! { name = benches; config = cfg(); targets = bench }
criterion_main!(benches);
