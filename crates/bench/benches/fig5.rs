//! Regenerates Figure 5 (path-length distribution, directed + undirected).

use criterion::{criterion_group, criterion_main, Criterion};
use gplus_bench::{criterion as cfg, dataset, network};
use gplus_core::experiments::fig5;
use gplus_graph::paths;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let data = dataset();
    let params =
        fig5::Fig5Params { k_start: 200, k_step: 200, k_max: 1_000, tol: 0.02, seed: 2 };
    println!("{}", fig5::render(&fig5::run(&data, &params)));

    let g = &network().graph;
    c.bench_function("fig5/sampled_paths_k200_directed", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(3);
            black_box(paths::sampled_path_lengths(g, 200, &mut rng))
        })
    });
}

criterion_group! { name = benches; config = cfg(); targets = bench }
criterion_main!(benches);
