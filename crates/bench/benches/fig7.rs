//! Regenerates Figure 7 (GDP vs Google+/Internet penetration).

use criterion::{criterion_group, criterion_main, Criterion};
use gplus_bench::{criterion as cfg, dataset};
use gplus_core::experiments::fig7;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let data = dataset();
    println!("{}", fig7::render(&fig7::run(&data)));
    c.bench_function("fig7/penetration_rates", |b| b.iter(|| black_box(fig7::run(&data))));
}

criterion_group! { name = benches; config = cfg(); targets = bench }
criterion_main!(benches);
