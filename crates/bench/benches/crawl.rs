//! Crawl benchmarks: §2.2's measurement apparatus — full-crawl throughput
//! vs worker count (the paper's 11 machines), and the lost-edge estimator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gplus_bench::{bench_seed, criterion as cfg};
use gplus_crawler::{lost_edges, mhrw, Crawler, CrawlerConfig, MhrwConfig};
use gplus_service::{GooglePlusService, ServiceConfig};
use gplus_synth::{SynthConfig, SynthNetwork};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // a dedicated (smaller) network: each iteration crawls it fully
    let net = SynthNetwork::generate(&SynthConfig::google_plus_2011(8_000, bench_seed()));
    let quiet =
        ServiceConfig { failure_rate: 0.0, private_list_fraction: 0.0, ..Default::default() };
    let svc = GooglePlusService::new(net.clone(), quiet.clone());

    // print the §2.2 lost-edge estimate under the paper's cap structure
    let tight = GooglePlusService::new(
        net.clone(),
        ServiceConfig { circle_list_limit: 200, page_size: 200, ..quiet.clone() },
    );
    let result = Crawler::paper_setup().run(&tight);
    let est = lost_edges::estimate(&result, 200);
    println!(
        "lost-edge estimate at cap 200: {} truncated users, {} lost, {:.2}% of edges \
         (paper at cap 10,000: 915 users, 1.6%)\n",
        est.truncated_users,
        est.lost_edges,
        est.lost_fraction * 100.0
    );

    let mut group = c.benchmark_group("crawl/full_by_machines");
    for machines in [1usize, 4, 11] {
        group.bench_with_input(BenchmarkId::from_parameter(machines), &machines, |b, &m| {
            let crawler = Crawler::new(CrawlerConfig { machines: m, ..Default::default() });
            b.iter(|| black_box(crawler.run(&svc)))
        });
    }
    group.finish();

    c.bench_function("crawl/lost_edge_estimate", |b| {
        b.iter(|| black_box(lost_edges::estimate(&result, 200)))
    });

    // MHRW sampling vs BFS: print the bias comparison, then time the walk
    let truth = &svc.ground_truth().graph;
    let pop_mean = truth.edge_count() as f64 / truth.node_count() as f64;
    let cfg_walk = MhrwConfig { steps: 4_000, burn_in: 500, thinning: 4, ..Default::default() };
    let walk = mhrw(&svc, &cfg_walk, &mut StdRng::seed_from_u64(3));
    let walk_mean = walk.estimate(|u| truth.in_degree(u as u32) as f64);
    println!(
        "MHRW sampled mean in-degree {walk_mean:.2} vs population {pop_mean:.2}          ({} profiles fetched)\n",
        walk.stats.profiles_crawled
    );
    c.bench_function("crawl/mhrw_4k_steps", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(3);
            black_box(mhrw(&svc, &cfg_walk, &mut rng))
        })
    });
}

criterion_group! { name = benches; config = cfg(); targets = bench }
criterion_main!(benches);
