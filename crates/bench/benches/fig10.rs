//! Regenerates Figure 10 (country-to-country link matrix).

use criterion::{criterion_group, criterion_main, Criterion};
use gplus_bench::{criterion as cfg, dataset};
use gplus_core::experiments::fig10;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let data = dataset();
    println!("{}", fig10::render(&fig10::run(&data)));
    c.bench_function("fig10/country_link_matrix", |b| b.iter(|| black_box(fig10::run(&data))));
}

criterion_group! { name = benches; config = cfg(); targets = bench }
criterion_main!(benches);
