//! Regenerates Figure 6 (top-10 countries).

use criterion::{criterion_group, criterion_main, Criterion};
use gplus_bench::{criterion as cfg, dataset};
use gplus_core::experiments::fig6;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let data = dataset();
    println!("{}", fig6::render(&fig6::run(&data)));
    c.bench_function("fig6/country_attribution", |b| b.iter(|| black_box(fig6::run(&data))));
}

criterion_group! { name = benches; config = cfg(); targets = bench }
criterion_main!(benches);
