//! Regenerates Figure 2 (fields-shared CCDF, tel-users vs all).

use criterion::{criterion_group, criterion_main, Criterion};
use gplus_bench::{criterion as cfg, dataset};
use gplus_core::experiments::fig2;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let data = dataset();
    println!("{}", fig2::render(&fig2::run(&data)));
    c.bench_function("fig2/fields_shared_ccdf", |b| b.iter(|| black_box(fig2::run(&data))));
}

criterion_group! { name = benches; config = cfg(); targets = bench }
criterion_main!(benches);
