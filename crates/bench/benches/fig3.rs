//! Regenerates Figure 3 (degree CCDFs + power-law fits).

use criterion::{criterion_group, criterion_main, Criterion};
use gplus_bench::{criterion as cfg, dataset};
use gplus_core::experiments::fig3;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let data = dataset();
    let params = fig3::Fig3Params::default();
    println!("{}", fig3::render(&fig3::run(&data, &params)));
    c.bench_function("fig3/degree_ccdfs_and_fits", |b| {
        b.iter(|| black_box(fig3::run(&data, &params)))
    });
}

criterion_group! { name = benches; config = cfg(); targets = bench }
criterion_main!(benches);
