//! Regenerates Figure 4 (reciprocity CDF, clustering CDF, SCC CCDF) and
//! times each panel separately.

use criterion::{criterion_group, criterion_main, Criterion};
use gplus_bench::{criterion as cfg, dataset, network};
use gplus_core::experiments::fig4;
use gplus_graph::{clustering, reciprocity, scc};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let data = dataset();
    let params = fig4::Fig4Params { cc_sample: 20_000, seed: 1 };
    println!("{}", fig4::render(&fig4::run(&data, &params)));

    let g = &network().graph;
    c.bench_function("fig4a/relation_reciprocity_all", |b| {
        b.iter(|| black_box(reciprocity::relation_reciprocity_all(g)))
    });
    c.bench_function("fig4b/sampled_cc_20k", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            black_box(clustering::sampled_cc(g, 20_000, &mut rng))
        })
    });
    c.bench_function("fig4c/kosaraju_scc", |b| b.iter(|| black_box(scc::kosaraju(g))));
}

criterion_group! { name = benches; config = cfg(); targets = bench }
criterion_main!(benches);
