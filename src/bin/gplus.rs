//! `gplus` — command-line front end for the reproduction workspace.
//!
//! ```text
//! gplus list                                  # experiment registry
//! gplus run      [-n N] [-s SEED] [--crawl] [--json PATH] [--verify]
//!                [--hybrid-threshold F] [--no-relabel] [--threads N] [ID ...]
//! gplus crawl    [-n N] [-s SEED] [--failure-rate F] [--private F]
//!                [--outage START:LEN] [--burst PROB:LEN] [--permafail F]
//!                [--corrupt RATE] [--sweeps N] [--checkpoint-every N]
//!                [--checkpoint PATH] [--resume PATH]
//! gplus export   [-n N] [-s SEED] [--edges PATH] [--profiles PATH]
//! gplus growth   [-n N] [-s SEED]
//! gplus motifs   [-n N] [-s SEED] [--json PATH]
//! gplus snapshot [-n N] [-s SEED] [--out DIR]
//! gplus serve    --snapshot DIR [--swap DIR2] [--swap-at K] [--queries N]
//!                [--workload-seed S] [--zipf F] [--log PATH]
//!                [--deadline-us US] [--max-in-flight N] [--rate CAP:REFILL]
//!                [--inject-corrupt-swap SEED]
//! gplus bench-suite [-n N] [-s SEED] [--out PATH] [--write-baseline PATH]
//!                [--hybrid-threshold F] [--no-relabel] [--threads N]
//!                [--scale] [--digest PATH]
//! gplus bench-check [--baseline PATH] [--current PATH] [--threshold F]
//! gplus verify-kernels [--seeds N] [--nodes K] [-s SEED] [--preset P]
//!                [--out DIR] [--no-adversarial]
//! ```
//!
//! `--hybrid-threshold F` sets the frontier-edge fraction at which BFS
//! levels switch to bottom-up scanning (default 0.05); `--no-relabel`
//! disables the hub-first locality permutation; `--threads N` sizes the
//! global rayon pool (default: one worker per core). All are pure
//! performance knobs: the chunk-parallel kernels reduce in a fixed chunk
//! order, so experiment outputs, compressed graph bytes, and snapshot
//! payloads are byte-identical across settings. `bench-suite --scale
//! --digest PATH` writes FNV-1a digests of the PageRank score bits, the
//! compressed CSR, the motif census, and the snapshot payload — the CI
//! thread-scaling smoke `cmp`s these files across `--threads` values to
//! enforce exactly that.
//!
//! `run` executes the full pipeline (ground truth by default, `--crawl`
//! for the faithful generate→serve→crawl path) and prints either every
//! artifact or only the requested experiment ids; `--verify` first
//! cross-checks the dataset's graph against the `gplus-oracle` reference
//! kernels and invariants, aborting rather than analysing on an unsound
//! kernel. `export` writes the synthetic dataset in the TSV layout of the
//! paper's own public release (edge list + profile attributes), so
//! downstream tooling can consume it.
//!
//! `snapshot` generates a network, runs the batch analyses (PageRank,
//! degree rankings, per-country leaderboards, reciprocity) and freezes
//! the result into a directory (checksummed `meta.json` + atomic
//! temp-then-rename writes); `serve` loads such a directory into the
//! online query engine — rejecting corrupt or version-skewed snapshots
//! with a typed error — and drives the seeded Zipf workload against it.
//! `--swap DIR2` hot-swaps to a second snapshot at query index
//! `--swap-at K` *through the `SwapGuard`*: a corrupt swap directory is
//! rejected mid-flight and the old epoch keeps serving (exit stays 0;
//! `--inject-corrupt-swap SEED` flips a seed-chosen payload byte first to
//! drill exactly that path). Overload knobs mirror `EngineConfig`:
//! `--deadline-us` bounds per-query latency budgets, `--max-in-flight`
//! bounds concurrency, `--rate CAP:REFILL` prices admission per cost
//! class (cheap 1, moderate 2, expensive 4 tokens) so expensive kinds
//! shed first. Shed queries are reported separately and do not fail the
//! run; only hard failures do. The workload is deterministic: same
//! snapshot, seed and knobs produce a byte-identical query log
//! (`--log PATH`), which is what the CI serve job compares across runs.
//!
//! `bench-suite --scale` is the paper-scale tier: it streams a 1M-user
//! network (no full edge materialisation), relabels and delta-gap
//! compresses the CSR, mmap-round-trips the binary container, runs the
//! kernels over the compressed graph cross-checked against the flat one,
//! and exercises the serving leg through a binary snapshot save/load. The
//! report carries `mem.*` byte gauges (flat CSR, compressed CSR, snapshot
//! payload, peak RSS) that `bench-check` gates against
//! `BENCH_scale_baseline.json`, plus calibration checks that the 1M-node
//! structural estimates stay inside bands bracketing the paper's
//! measurements.
//!
//! `motifs` censuses the seven directed-triangle classes (030T … 300)
//! over a generated network and prints the class table — the standalone
//! front end for the `motifs` pipeline stage; `--json PATH` dumps the raw
//! [`MotifsResult`](gplus::analysis::experiments::motifs::MotifsResult).
//!
//! `verify-kernels` is the standalone differential sweep: it fuzzes the
//! optimized kernels against the oracle across seeds × presets (plus
//! adversarial tiny-graph shapes), shrinking any failure and writing
//! reproducer JSONs under `--out` (default `target/oracle`).

use gplus::analysis::registry;
use gplus::analysis::{
    bench_compare, BenchConfig, BenchGate, BenchReport, CrawlDataset, CtxOptions, Reproduction,
    ReproductionConfig, StageTiming,
};
use gplus::crawler::{CrawlCheckpoint, CrawlResult, Crawler, CrawlerConfig};
use gplus::oracle::{DiffConfig, Preset, SweepConfig};
use gplus::serve::{
    run_guarded, run_workload, AnalysedSnapshot, EngineConfig, QueryEngine, WorkloadConfig,
};
use gplus::service::{
    CorruptionPlan, FaultPlan, GooglePlusService, ServiceConfig, SocialApi, TokenBucket,
    WireService,
};
use gplus::synth::{GrowthModel, SynthConfig, SynthNetwork};
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("run") => cmd_run(&args[1..]),
        Some("crawl") => cmd_crawl(&args[1..]),
        Some("export") => cmd_export(&args[1..]),
        Some("growth") => cmd_growth(&args[1..]),
        Some("motifs") => cmd_motifs(&args[1..]),
        Some("snapshot") => cmd_snapshot(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("bench-suite") => cmd_bench_suite(&args[1..]),
        Some("bench-check") => cmd_bench_check(&args[1..]),
        Some("verify-kernels") => cmd_verify_kernels(&args[1..]),
        Some("help") | None => {
            print_usage();
            0
        }
        Some(other) => {
            eprintln!("unknown command: {other}\n");
            print_usage();
            2
        }
    };
    std::process::exit(code);
}

fn print_usage() {
    eprintln!(
        "gplus — IMC 2012 Google+ study reproduction\n\n\
         USAGE:\n  \
         gplus list\n  \
         gplus run    [-n N] [-s SEED] [--crawl] [--json PATH] [--verify]\n               \
         [--hybrid-threshold F] [--no-relabel] [--threads N] [ID ...]\n  \
         gplus crawl  [-n N] [-s SEED] [--failure-rate F] [--private F]\n               \
         [--outage START:LEN] [--burst PROB:LEN] [--permafail F]\n               \
         [--corrupt RATE] [--sweeps N] [--checkpoint-every N]\n               \
         [--checkpoint PATH] [--resume PATH]\n  \
         gplus export [-n N] [-s SEED] [--edges PATH] [--profiles PATH]\n  \
         gplus growth [-n N] [-s SEED]\n  \
         gplus motifs [-n N] [-s SEED] [--json PATH]\n  \
         gplus snapshot [-n N] [-s SEED] [--out DIR]\n  \
         gplus serve  --snapshot DIR [--swap DIR2] [--swap-at K] [--queries N]\n               \
         [--workload-seed S] [--zipf F] [--log PATH]\n               \
         [--deadline-us US] [--max-in-flight N] [--rate CAP:REFILL]\n               \
         [--inject-corrupt-swap SEED]\n  \
         gplus bench-suite [-n N] [-s SEED] [--out PATH] [--write-baseline PATH]\n               \
         [--hybrid-threshold F] [--no-relabel] [--threads N]\n               \
         [--scale] [--digest PATH]\n  \
         gplus bench-check [--baseline PATH] [--current PATH] [--threshold F]\n  \
         gplus verify-kernels [--seeds N] [--nodes K] [-s SEED] [--preset P]\n               \
         [--out DIR] [--no-adversarial]\n\n\
         Experiment IDs for `run`: see `gplus list`.\n\
         Traversal tuning (run, bench-suite): --hybrid-threshold F sets the\n\
         frontier-edge fraction at which BFS switches bottom-up (default 0.05,\n\
         0 < F <= 1); --no-relabel disables the hub-first CSR permutation;\n\
         --threads N sizes the rayon pool (default one worker per core).\n\
         Outputs are byte-identical across settings, including thread counts\n\
         (fixed-order chunk reduction); bench-suite --scale --digest PATH\n\
         writes kernel output digests so CI can cmp runs at different\n\
         --threads values.\n\
         Scale: bench-suite --scale runs the paper-scale tier (default 1M\n\
         users): streamed generation, compressed-CSR kernels, binary mmap\n\
         round trips, and mem.* byte gauges gated by bench-check against\n\
         BENCH_scale_baseline.json.\n\
         Correctness: `run --verify` cross-checks the graph against the oracle\n\
         before analysing; `verify-kernels` sweeps seeds x presets (gplus,\n\
         twitter, facebook; default all) differentially, shrinking failures\n\
         into reproducer JSONs under --out (default target/oracle)."
    );
}

/// Minimal flag parser: `-n`, `-s`, `--flag value` pairs and positionals.
struct Flags {
    n: usize,
    seed: u64,
    options: std::collections::HashMap<String, String>,
    switches: Vec<String>,
    positional: Vec<String>,
}

fn parse_flags(args: &[String], value_flags: &[&str], switch_flags: &[&str]) -> Flags {
    let mut flags = Flags {
        n: 50_000,
        seed: 2012,
        options: Default::default(),
        switches: Vec::new(),
        positional: Vec::new(),
    };
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        let grab = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_default()
        };
        if a == "-n" {
            flags.n = grab(&mut i).parse().unwrap_or(flags.n);
        } else if a == "-s" {
            flags.seed = grab(&mut i).parse().unwrap_or(flags.seed);
        } else if switch_flags.contains(&a.as_str()) {
            flags.switches.push(a.clone());
        } else if value_flags.contains(&a.as_str()) {
            let v = grab(&mut i);
            flags.options.insert(a.clone(), v);
        } else {
            flags.positional.push(a.clone());
        }
        i += 1;
    }
    flags
}

/// Applies `--hybrid-threshold` / `--no-relabel` to a [`CtxOptions`].
/// Returns an exit code on invalid input.
fn traversal_options(flags: &Flags) -> Result<CtxOptions, i32> {
    let mut opts = CtxOptions::default();
    if flags.switches.iter().any(|s| s == "--no-relabel") {
        opts.relabel = false;
    }
    if let Some(v) = flags.options.get("--hybrid-threshold") {
        match v.parse::<f64>() {
            Ok(t) if t > 0.0 && t <= 1.0 => opts.hybrid_threshold = t,
            _ => {
                eprintln!("--hybrid-threshold expects a fraction in (0, 1] (e.g. 0.05)");
                return Err(2);
            }
        }
    }
    Ok(opts)
}

/// Applies `--threads N`: sizes the global rayon pool. Returns an exit
/// code on invalid input. Must run before the first parallel call — the
/// global pool is built once, on first use, and cannot be resized after.
/// Kernel outputs are byte-identical at any setting (the deterministic
/// chunk-reduction contract); only wall-clock changes.
fn apply_threads(flags: &Flags) -> Result<(), i32> {
    let Some(v) = flags.options.get("--threads") else { return Ok(()) };
    let threads: usize = match v.parse() {
        Ok(t) if t >= 1 => t,
        _ => {
            eprintln!("--threads expects a worker count >= 1");
            return Err(2);
        }
    };
    if let Err(e) = rayon::ThreadPoolBuilder::new().num_threads(threads).build_global() {
        eprintln!("failed to size the rayon pool to {threads} threads: {e}");
        return Err(2);
    }
    eprintln!("rayon pool sized to {threads} thread(s)");
    Ok(())
}

fn cmd_list() -> i32 {
    println!("{}", registry::render_index());
    0
}

fn cmd_run(args: &[String]) -> i32 {
    let flags = parse_flags(
        args,
        &["--json", "--hybrid-threshold", "--threads"],
        &["--crawl", "--no-relabel", "--verify"],
    );
    if let Err(code) = apply_threads(&flags) {
        return code;
    }
    for id in &flags.positional {
        if registry::find(id).is_none() {
            eprintln!("unknown experiment id: {id} (see `gplus list`)");
            return 2;
        }
    }
    let mut config = ReproductionConfig::quick(flags.n, flags.seed);
    config.traversal = match traversal_options(&flags) {
        Ok(opts) => opts,
        Err(code) => return code,
    };
    if flags.switches.iter().any(|s| s == "--verify") {
        config.verify = true;
        eprintln!("oracle verification enabled: kernels are cross-checked before analysis");
    }
    eprintln!(
        "running {} pipeline at {} users (seed {}) ...",
        if flags.switches.iter().any(|s| s == "--crawl") { "crawled" } else { "ground-truth" },
        flags.n,
        flags.seed
    );
    let report = if flags.switches.iter().any(|s| s == "--crawl") {
        Reproduction::run(&config)
    } else {
        Reproduction::run_ground_truth(&config)
    };

    if flags.positional.is_empty() {
        println!("{}", report.render_all());
    } else {
        use gplus::analysis::experiments::*;
        for id in &flags.positional {
            let text = match id.as_str() {
                "table1" => table1::render(&report.table1),
                "table2" => table2::render(&report.table2),
                "table3" => table3::render(&report.table3),
                "table4" => table4::render(&report.table4),
                "table5" => table5::render(&report.table5),
                "fig2" => fig2::render(&report.fig2),
                "fig3" => fig3::render(&report.fig3),
                "fig4" => fig4::render(&report.fig4),
                "fig5" => fig5::render(&report.fig5),
                "fig6" => fig6::render(&report.fig6),
                "fig7" => fig7::render(&report.fig7),
                "fig8" => fig8::render(&report.fig8),
                "fig9" => fig9::render(&report.fig9),
                "fig10" => fig10::render(&report.fig10),
                "lost_edges" => report
                    .lost_edges
                    .map(|e| {
                        format!(
                            "lost edges: {} truncated users, {} lost, {:.2}% of edges\n",
                            e.truncated_users,
                            e.lost_edges,
                            e.lost_fraction * 100.0
                        )
                    })
                    .unwrap_or_else(|| "lost_edges requires --crawl\n".into()),
                other => format!("(no renderer for {other} under `run`; see examples)\n"),
            };
            println!("{text}");
        }
    }

    if let Some(path) = flags.options.get("--json") {
        if let Err(e) = std::fs::write(path, report.to_json_with_timings()) {
            eprintln!("failed to write {path}: {e}");
            return 1;
        }
        eprintln!("JSON report written to {path}");
    }
    0
}

/// Parses `"A:B"` into two values (e.g. `--outage START:LEN`).
fn parse_pair<A: std::str::FromStr, B: std::str::FromStr>(v: &str) -> Option<(A, B)> {
    let (a, b) = v.split_once(':')?;
    Some((a.parse().ok()?, b.parse().ok()?))
}

/// Runs (or resumes) a crawl against any transport that speaks [`SocialApi`].
fn crawl_with<S: SocialApi>(
    crawler: &Crawler,
    svc: &S,
    resume: Option<&CrawlCheckpoint>,
) -> (CrawlResult, Vec<CrawlCheckpoint>) {
    match resume {
        Some(cp) => (Crawler::resume(svc, cp), Vec::new()),
        None => crawler.run_checkpointed(svc),
    }
}

fn cmd_crawl(args: &[String]) -> i32 {
    let flags = parse_flags(
        args,
        &[
            "--failure-rate",
            "--private",
            "--outage",
            "--burst",
            "--permafail",
            "--corrupt",
            "--sweeps",
            "--checkpoint-every",
            "--checkpoint",
            "--resume",
        ],
        &[],
    );
    let failure_rate: f64 =
        flags.options.get("--failure-rate").and_then(|v| v.parse().ok()).unwrap_or(0.02);
    let private: f64 =
        flags.options.get("--private").and_then(|v| v.parse().ok()).unwrap_or(0.03);

    let mut plan = FaultPlan::none();
    if let Some(v) = flags.options.get("--outage") {
        let Some((start, len)) = parse_pair::<u64, u64>(v) else {
            eprintln!("--outage expects START:LEN (request sequence numbers)");
            return 2;
        };
        plan = plan.with_outage(start, len);
    }
    if let Some(v) = flags.options.get("--burst") {
        let Some((prob, len)) = parse_pair::<f64, u64>(v) else {
            eprintln!("--burst expects PROB:LEN (e.g. 0.3:16)");
            return 2;
        };
        plan = plan.with_burst(len, prob);
    }
    if let Some(v) = flags.options.get("--permafail") {
        let Ok(frac) = v.parse::<f64>() else {
            eprintln!("--permafail expects a fraction in [0,1]");
            return 2;
        };
        plan = plan.with_permafail_fraction(frac);
    }
    let corrupt: f64 =
        flags.options.get("--corrupt").and_then(|v| v.parse().ok()).unwrap_or(0.0);

    let mut crawler_config = CrawlerConfig::default();
    if let Some(v) = flags.options.get("--sweeps") {
        crawler_config.dead_letter_sweeps = match v.parse() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("--sweeps expects a count");
                return 2;
            }
        };
    }
    if let Some(v) = flags.options.get("--checkpoint-every") {
        crawler_config.checkpoint_every = match v.parse() {
            Ok(n) => Some(n),
            Err(_) => {
                eprintln!("--checkpoint-every expects a profile count");
                return 2;
            }
        };
    }
    let resume_cp = match flags.options.get("--resume") {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("failed to read checkpoint {path}: {e}");
                    return 1;
                }
            };
            match CrawlCheckpoint::from_json(&text) {
                Ok(cp) => {
                    eprintln!(
                        "resuming from {path}: {} crawled, {} pending, clock {}",
                        cp.crawled_count(),
                        cp.pending_count(),
                        cp.clock
                    );
                    Some(cp)
                }
                Err(e) => {
                    eprintln!("bad checkpoint {path}: {e}");
                    return 1;
                }
            }
        }
        None => None,
    };

    eprintln!("generating network ({} users, seed {}) ...", flags.n, flags.seed);
    let net = SynthNetwork::generate(&SynthConfig::google_plus_2011(flags.n, flags.seed));
    let truth = net.graph.clone();
    let svc = GooglePlusService::new(
        net,
        ServiceConfig {
            failure_rate,
            private_list_fraction: private,
            fault_plan: plan,
            ..ServiceConfig::default()
        },
    );
    let circle_list_limit = svc.config().circle_list_limit as u64;
    let crawler = Crawler::new(crawler_config);
    let (result, snapshots) = if corrupt > 0.0 {
        let wire = WireService::with_corruption(svc, CorruptionPlan::new(flags.seed, corrupt));
        let out = crawl_with(&crawler, &wire, resume_cp.as_ref());
        eprintln!(
            "wire transport: {} frames sent, {} corrupted",
            wire.frames_sent(),
            wire.frames_corrupted()
        );
        out
    } else {
        crawl_with(&crawler, &svc, resume_cp.as_ref())
    };

    if let Some(path) = flags.options.get("--checkpoint") {
        match snapshots.last() {
            Some(cp) => {
                if let Err(e) = std::fs::write(path, cp.to_json()) {
                    eprintln!("failed to write checkpoint {path}: {e}");
                    return 1;
                }
                eprintln!(
                    "checkpoint written to {path} ({} crawled, {} pending)",
                    cp.crawled_count(),
                    cp.pending_count()
                );
            }
            None if resume_cp.is_some() => {
                eprintln!("note: resumed runs take no new checkpoints; {path} not written");
            }
            None => {
                eprintln!("no checkpoint taken (set --checkpoint-every N); {path} not written");
            }
        }
    }

    let cov = result.coverage(&truth);
    let est = gplus::crawler::lost_edges::estimate(&result, circle_list_limit);
    println!(
        "crawl finished: {} profiles, {} users discovered, {} edges",
        result.crawled_count(),
        result.discovered_count(),
        result.graph.edge_count()
    );
    println!(
        "coverage: {:.1}% nodes, {:.1}% edges; retries {}, transient errors {}, private lists {}",
        cov.node_coverage * 100.0,
        cov.edge_coverage * 100.0,
        result.stats.retries,
        result.stats.transient_errors,
        result.stats.private_list_users
    );
    println!(
        "faults ridden out: {} failed profiles, {} dead-letter requeues over {} sweeps, \
         {} backoff ticks across {} simulated ticks",
        result.stats.failed_profiles,
        result.stats.dead_letter_requeues,
        result.stats.sweep_rounds,
        result.stats.backoff_ticks,
        result.stats.sim_ticks
    );
    println!(
        "lost-edge estimate: {} truncated users, {:.3}% of edges (paper: 915 / 1.6%)",
        est.truncated_users,
        est.lost_fraction * 100.0
    );
    0
}

fn cmd_export(args: &[String]) -> i32 {
    let flags = parse_flags(args, &["--edges", "--profiles"], &[]);
    let edges_path = flags.options.get("--edges").cloned().unwrap_or("edges.tsv".into());
    let profiles_path =
        flags.options.get("--profiles").cloned().unwrap_or("profiles.tsv".into());
    eprintln!("generating network ({} users, seed {}) ...", flags.n, flags.seed);
    let net = SynthNetwork::generate(&SynthConfig::google_plus_2011(flags.n, flags.seed));

    let write = || -> std::io::Result<()> {
        let mut ef = std::io::BufWriter::new(std::fs::File::create(&edges_path)?);
        for (u, v) in net.graph.edges() {
            writeln!(ef, "{u}\t{v}")?;
        }
        let mut pf = std::io::BufWriter::new(std::fs::File::create(&profiles_path)?);
        writeln!(
            pf,
            "user_id\tname\tgender\trelationship\tcountry\toccupation\tfields_shared\ttel_user"
        )?;
        for node in net.graph.nodes() {
            let p = net.population.profile(node);
            let opt = |b: bool, s: String| if b { s } else { "-".into() };
            writeln!(
                pf,
                "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
                p.user_id,
                p.display_name(),
                opt(p.public_gender().is_some(), format!("{:?}", p.gender)),
                opt(p.public_relationship().is_some(), p.relationship.label().to_string()),
                p.public_country().map(|c| c.code().to_string()).unwrap_or("-".into()),
                p.public_occupation().map(|o| o.code().to_string()).unwrap_or("-".into()),
                p.fields_shared(),
                p.is_tel_user() as u8
            )?;
        }
        Ok(())
    };
    match write() {
        Ok(()) => {
            println!(
                "exported {} edges to {edges_path} and {} profiles to {profiles_path}",
                net.graph.edge_count(),
                net.node_count()
            );
            0
        }
        Err(e) => {
            eprintln!("export failed: {e}");
            1
        }
    }
}

fn cmd_growth(args: &[String]) -> i32 {
    let flags = parse_flags(args, &[], &[]);
    eprintln!("generating network ({} users, seed {}) ...", flags.n, flags.seed);
    let net = SynthNetwork::generate(&SynthConfig::google_plus_2011(flags.n, flags.seed));
    let model = GrowthModel::new(&net, 0.4, flags.seed);
    let series = model.snapshot_series(&net, &[0.2, 0.4, 0.6, 0.8, 1.0], 150, flags.seed);
    println!("fraction  nodes    edges     mean_degree  mean_path  diameter");
    for s in &series {
        println!(
            "{:>8.0}%  {:>7}  {:>8}  {:>11.2}  {:>9.2}  {:>8}",
            s.fraction * 100.0,
            s.nodes,
            s.edges,
            s.mean_degree,
            s.mean_path,
            s.diameter
        );
    }
    if let Some(a) = gplus::synth::densification_exponent(&series) {
        println!("densification exponent a = {a:.2} (Leskovec: 1 < a < 2)");
    }
    0
}

fn cmd_motifs(args: &[String]) -> i32 {
    use gplus::analysis::experiments::motifs;
    use gplus::analysis::GroundTruthDataset;
    let flags = parse_flags(args, &["--json"], &[]);
    eprintln!("generating network ({} users, seed {}) ...", flags.n, flags.seed);
    let net = SynthNetwork::generate(&SynthConfig::google_plus_2011(flags.n, flags.seed));
    eprintln!("censusing directed triangles ...");
    let result = motifs::run(&GroundTruthDataset::new(&net));
    println!("{}", motifs::render(&result));
    if let Some(path) = flags.options.get("--json") {
        let json = serde_json::to_string_pretty(&result).expect("motif result serialises");
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("failed to write {path}: {e}");
            return 1;
        }
        eprintln!("JSON motif census written to {path}");
    }
    0
}

fn cmd_snapshot(args: &[String]) -> i32 {
    let flags = parse_flags(args, &["--out"], &[]);
    let out = flags.options.get("--out").cloned().unwrap_or_else(|| "snapshot".into());
    eprintln!("generating network ({} users, seed {}) ...", flags.n, flags.seed);
    let net = SynthNetwork::generate(&SynthConfig::google_plus_2011(flags.n, flags.seed));
    eprintln!("analysing (pagerank, degree rankings, per-country leaderboards) ...");
    let snap = AnalysedSnapshot::build(&net);
    match snap.save(std::path::Path::new(&out)) {
        Ok(()) => {
            println!(
                "snapshot written to {out}/ ({} nodes, {} edges, seed {})",
                snap.graph.node_count(),
                snap.graph.edge_count(),
                snap.seed
            );
            0
        }
        Err(e) => {
            eprintln!("snapshot write failed: {e}");
            1
        }
    }
}

fn cmd_serve(args: &[String]) -> i32 {
    let flags = parse_flags(
        args,
        &[
            "--snapshot",
            "--swap",
            "--swap-at",
            "--queries",
            "--workload-seed",
            "--zipf",
            "--log",
            "--deadline-us",
            "--max-in-flight",
            "--rate",
            "--inject-corrupt-swap",
        ],
        &[],
    );
    let Some(dir) = flags.options.get("--snapshot") else {
        eprintln!("serve requires --snapshot DIR (build one with `gplus snapshot --out DIR`)");
        return 2;
    };
    // The initial snapshot must load: with nothing to serve yet there is
    // no old epoch to fall back to, so integrity failures are fatal here.
    let snapshot = match AnalysedSnapshot::load(std::path::Path::new(dir)) {
        Ok(s) => {
            eprintln!(
                "loaded {dir}/: {} nodes, {} edges, seed {}",
                s.graph.node_count(),
                s.graph.edge_count(),
                s.seed
            );
            s
        }
        Err(e) => {
            eprintln!("failed to load snapshot {dir}: {e}");
            return 1;
        }
    };
    // The swap directory is deliberately NOT loaded up front: it goes
    // through the SwapGuard mid-workload, so a corrupt deploy becomes a
    // rejected swap (old epoch keeps serving) rather than a startup
    // failure.
    let swap_dir = flags.options.get("--swap").map(std::path::PathBuf::from);
    let queries: u64 =
        flags.options.get("--queries").and_then(|v| v.parse().ok()).unwrap_or(5_000);
    let workload_seed: u64 =
        flags.options.get("--workload-seed").and_then(|v| v.parse().ok()).unwrap_or(flags.seed);
    let zipf: f64 = match flags.options.get("--zipf").map(|v| v.parse::<f64>()) {
        None => 1.0,
        Some(Ok(z)) if z >= 0.0 && z.is_finite() => z,
        Some(_) => {
            eprintln!("--zipf expects a non-negative finite exponent (e.g. 1.0)");
            return 2;
        }
    };
    let swap_at: u64 =
        flags.options.get("--swap-at").and_then(|v| v.parse().ok()).unwrap_or(queries / 2);
    let deadline_us: Option<u64> = match flags.options.get("--deadline-us").map(|v| v.parse()) {
        None => None,
        Some(Ok(us)) => Some(us),
        Some(Err(_)) => {
            eprintln!("--deadline-us expects a microsecond budget (e.g. 5000)");
            return 2;
        }
    };
    let max_in_flight: Option<u32> =
        match flags.options.get("--max-in-flight").map(|v| v.parse()) {
            None => None,
            Some(Ok(n)) if n > 0 => Some(n),
            Some(_) => {
                eprintln!("--max-in-flight expects a positive query count (e.g. 64)");
                return 2;
            }
        };
    let limiter = match flags.options.get("--rate") {
        None => None,
        Some(v) => match parse_pair::<f64, f64>(v) {
            Some((cap, refill))
                if cap > 0.0 && cap.is_finite() && refill >= 0.0 && refill.is_finite() =>
            {
                Some(TokenBucket::new(cap, refill))
            }
            _ => {
                eprintln!("--rate expects CAPACITY:REFILL_PER_TICK (e.g. 64:8)");
                return 2;
            }
        },
    };
    if let Some(seed_str) = flags.options.get("--inject-corrupt-swap") {
        let Some(swap_dir) = swap_dir.as_deref() else {
            eprintln!("--inject-corrupt-swap requires --swap DIR to damage");
            return 2;
        };
        let Ok(inject_seed) = seed_str.parse::<u64>() else {
            eprintln!("--inject-corrupt-swap expects a u64 seed");
            return 2;
        };
        match gplus::serve::corrupt_payload(swap_dir, inject_seed, 1) {
            Ok(offsets) => eprintln!(
                "injected corruption into {} at byte offsets {:?} (seed {inject_seed})",
                swap_dir.display(),
                offsets
            ),
            Err(e) => {
                eprintln!("failed to corrupt swap payload: {e}");
                return 1;
            }
        }
    }

    let config = WorkloadConfig {
        seed: workload_seed,
        queries,
        user_space: snapshot.graph.node_count() as u64,
        zipf_exponent: zipf,
        ..WorkloadConfig::default()
    };
    let engine = QueryEngine::new(
        snapshot,
        EngineConfig { limiter, deadline_us, max_in_flight, simulated_clock: false },
    );
    eprintln!(
        "serving {queries} queries (workload seed {workload_seed}, zipf {zipf}){}",
        if swap_dir.is_some() {
            format!(", guarded snapshot swap at query {swap_at}")
        } else {
            String::new()
        }
    );
    let report = run_guarded(&engine, &config, swap_dir.as_deref().map(|d| (swap_at, d)));

    if let Some(path) = flags.options.get("--log") {
        if let Err(e) = std::fs::write(path, &report.log) {
            eprintln!("failed to write query log {path}: {e}");
            return 1;
        }
        eprintln!("query log written to {path} ({} lines)", report.queries);
    }
    println!(
        "served {} queries, {} shed under overload, {} failed, final epoch {}",
        report.queries,
        report.shed,
        report.failed,
        engine.epoch()
    );
    for (kind, count) in &report.per_kind {
        println!("  {kind:>14}: {count}");
    }
    if report.swap_rejected {
        eprintln!("snapshot swap rejected; old epoch kept serving (serve.swap.rejected_count)");
    }
    // Shed queries are the overload policy working as designed; anything
    // failed beyond the shed count is a wrong answer the workload should
    // never see (it only draws ids the initial snapshot can answer).
    let hard_failures = report.failed.saturating_sub(report.shed);
    if hard_failures > 0 {
        eprintln!("serve finished with {hard_failures} hard-failed queries");
        return 1;
    }
    0
}

/// Output of a child process's first line, or `None` on any failure —
/// bench provenance fields degrade to "unknown" rather than erroring.
fn command_line(cmd: &str, args: &[&str]) -> Option<String> {
    let out = std::process::Command::new(cmd).args(args).output().ok()?;
    if !out.status.success() {
        return None;
    }
    let text = String::from_utf8(out.stdout).ok()?;
    text.lines().next().map(|l| l.trim().to_string())
}

fn cmd_bench_suite(args: &[String]) -> i32 {
    let mut flags = parse_flags(
        args,
        &["--out", "--write-baseline", "--hybrid-threshold", "--threads", "--digest"],
        &["--no-relabel", "--scale"],
    );
    if let Err(code) = apply_threads(&flags) {
        return code;
    }
    if flags.switches.iter().any(|s| s == "--scale") {
        if !args.iter().any(|a| a == "-n") {
            flags.n = 1_000_000; // paper scale: the study crawled ~1M users
        }
        return cmd_bench_scale(&flags);
    }
    if !args.iter().any(|a| a == "-n") {
        flags.n = 20_000; // bench default: the committed-baseline scale
    }
    let out_path =
        flags.options.get("--out").cloned().unwrap_or_else(|| "BENCH_pipeline.json".into());
    let obs = gplus::obs::global();

    eprintln!("bench-suite: {} users, seed {}", flags.n, flags.seed);
    let mut config = ReproductionConfig::quick(flags.n, flags.seed);
    config.traversal = match traversal_options(&flags) {
        Ok(opts) => opts,
        Err(code) => return code,
    };

    let timed = |label: &str, f: &mut dyn FnMut()| -> f64 {
        let start = std::time::Instant::now();
        f();
        let ms = start.elapsed().as_secs_f64() * 1_000.0;
        eprintln!("  {label}: {ms:.0} ms");
        ms
    };

    let mut network = None;
    let generate_ms = timed("generate", &mut || {
        network = Some(SynthNetwork::generate(&config.synth));
    });
    let network = network.expect("generated");

    let mut analysed = None;
    let snapshot_ms = timed("snapshot", &mut || {
        analysed = Some(AnalysedSnapshot::build(&network));
    });
    let analysed = analysed.expect("analysed snapshot");
    let serving_users = analysed.graph.node_count() as u64;

    let service = GooglePlusService::new(network, config.service.clone());
    let crawler = Crawler::new(config.crawler.clone());
    let mut crawl_result = None;
    let crawl_ms = timed("crawl", &mut || {
        crawl_result = Some(crawler.run(&service));
    });
    let crawl_result = crawl_result.expect("crawled");

    let mut dataset = None;
    let dataset_ms = timed("dataset", &mut || {
        dataset = Some(CrawlDataset::new(&crawl_result));
    });
    let dataset = dataset.expect("built");

    let mut report = None;
    let analyse_ms = timed("analyse (metrics on)", &mut || {
        report = Some(Reproduction::analyse(&dataset, &config));
    });
    let report = report.expect("analysed");
    let timings = report.timings.as_ref().expect("executor records timings");

    // same binary, gate closed: the "metrics compiled out" arm of the
    // overhead bound (every record call is one relaxed load + branch)
    obs.set_enabled(false);
    let analyse_off_ms = timed("analyse (metrics off)", &mut || {
        let _ = Reproduction::analyse(&dataset, &config);
    });
    obs.set_enabled(true);
    let overhead = analyse_ms / analyse_off_ms.max(f64::EPSILON);
    eprintln!("  metrics overhead ratio: {overhead:.3}");

    let engine = QueryEngine::new(analysed, EngineConfig::default());
    let workload = WorkloadConfig {
        seed: flags.seed,
        queries: 2_000,
        user_space: serving_users,
        ..WorkloadConfig::default()
    };
    let serve_ms = timed("serve", &mut || {
        let report = run_workload(&engine, &workload, None);
        assert_eq!(report.failed, 0, "bench serving workload must not fail queries");
    });

    let phase = |id: &str, millis: f64| StageTiming { id: id.to_string(), millis };
    let bench = BenchReport {
        schema: gplus::analysis::benchreport::BENCH_SCHEMA.to_string(),
        git_sha: command_line("git", &["rev-parse", "HEAD"])
            .or_else(|| std::env::var("GITHUB_SHA").ok())
            .unwrap_or_else(|| "unknown".into()),
        toolchain: command_line("rustc", &["--version"]).unwrap_or_else(|| "unknown".into()),
        host: format!(
            "{}-{} ({} threads)",
            std::env::consts::OS,
            std::env::consts::ARCH,
            timings.threads
        ),
        config: BenchConfig { n_users: flags.n, seed: flags.seed, threads: timings.threads },
        phases: vec![
            phase("generate", generate_ms),
            phase("snapshot", snapshot_ms),
            phase("crawl", crawl_ms),
            phase("dataset", dataset_ms),
            phase("analyse", analyse_ms),
            phase("serve", serve_ms),
        ],
        stages: timings.stages.clone(),
        analyse_wall_ms: analyse_ms,
        analyse_wall_ms_metrics_off: analyse_off_ms,
        metrics_overhead_ratio: overhead,
        metrics: obs.snapshot(),
        // thread-scaling reruns are a scale-tier concern; at 20k users the
        // kernels finish in milliseconds and the ratio is timer noise
        speedups: Vec::new(),
    };

    eprintln!(
        "  {} distinct metrics captured across crawler/service/pipeline/graph",
        bench.metrics.distinct_metrics()
    );
    if let Err(e) = std::fs::write(&out_path, bench.to_json()) {
        eprintln!("failed to write {out_path}: {e}");
        return 1;
    }
    println!("bench report written to {out_path}");
    if let Some(baseline_path) = flags.options.get("--write-baseline") {
        if let Err(e) = std::fs::write(baseline_path, bench.to_json()) {
            eprintln!("failed to write baseline {baseline_path}: {e}");
            return 1;
        }
        println!("baseline refreshed at {baseline_path}");
    }
    0
}

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`); `None` on platforms without procfs.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let kb: u64 = status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))?
        .split_whitespace()
        .next()?
        .parse()
        .ok()?;
    Some(kb * 1024)
}

/// The paper-scale memory-gauged tier (`bench-suite --scale`): streams the
/// 1M-user network straight into a CSR, relabels hub-first and delta-gap
/// compresses it, round-trips the binary container through an mmap open,
/// runs the traversal kernels over the compressed graph (cross-checked
/// against the flat CSR), and drives the serving leg through a binary
/// snapshot save/load. Byte-footprint gauges (`mem.*`) land in the report
/// so `bench-check` can gate memory alongside time shares, and the 1M
/// structural estimates are checked against the paper's calibration bands.
fn cmd_bench_scale(flags: &Flags) -> i32 {
    use gplus::graph::pagerank::{pagerank, PageRankParams};
    use gplus::graph::relabel::Relabeling;
    use gplus::graph::{bfs, clustering, degree, io as graph_io, paths, reciprocity, scc};
    use gplus::graph::{Adjacency, CompressedCsr, NodeId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let out_path =
        flags.options.get("--out").cloned().unwrap_or_else(|| "BENCH_scale.json".into());
    let obs = gplus::obs::global();
    // The gate requires these counters in every report; the scale tier only
    // exercises a subset of the paths that increment them, so register the
    // full set at 0 up front (the AnalysisCtx convention).
    for name in BenchGate::default().required_counters {
        let _ = obs.counter(name);
    }

    eprintln!("bench-suite --scale: {} users, seed {}", flags.n, flags.seed);
    let timed = |label: &str, f: &mut dyn FnMut()| -> f64 {
        let start = std::time::Instant::now();
        f();
        let ms = start.elapsed().as_secs_f64() * 1_000.0;
        eprintln!("  {label}: {ms:.0} ms");
        ms
    };

    let mut network = None;
    let generate_ms = timed("generate (streamed)", &mut || {
        network = Some(SynthNetwork::generate_streamed(&SynthConfig::google_plus_2011(
            flags.n, flags.seed,
        )));
    });
    let network = network.expect("generated");
    let graph = &network.graph;
    let n = graph.node_count();
    obs.gauge(gplus::obs::names::MEM_CSR_BYTES).set(graph.memory_bytes() as f64);

    let mut relabelled = None;
    let mut compressed = None;
    let compress_ms = timed("relabel + compress", &mut || {
        let g = Relabeling::degree_descending(graph).apply(graph);
        compressed = Some(CompressedCsr::from_csr(&g)); // sets mem.csr.compressed.bytes
        relabelled = Some(g);
    });
    let relabelled = relabelled.expect("relabelled");
    let compressed = compressed.expect("compressed");
    eprintln!(
        "  flat {:.1} MiB -> compressed {:.1} MiB ({:.2} bytes/edge)",
        graph.memory_bytes() as f64 / (1 << 20) as f64,
        compressed.memory_bytes() as f64 / (1 << 20) as f64,
        compressed.memory_bytes() as f64 / compressed.edge_count().max(1) as f64 / 2.0
    );

    let scale_dir = std::path::Path::new("target/bench-scale");
    let graph_io_ms = timed("graph io (write + mmap open)", &mut || {
        std::fs::create_dir_all(scale_dir).expect("create target/bench-scale");
        let bin_path = scale_dir.join("graph.cbin");
        graph_io::write_compressed(&compressed, &bin_path).expect("write compressed graph");
        let reopened = graph_io::open_compressed(&bin_path).expect("open compressed graph");
        assert_eq!(reopened.node_count(), compressed.node_count());
        assert_eq!(reopened.edge_count(), compressed.edge_count());
        for v in [0, 1, (n / 2) as NodeId, (n - 1) as NodeId]
            .into_iter()
            .filter(|&v| (v as usize) < n)
        {
            assert!(
                reopened.out_iter(v).eq(compressed.out_iter(v))
                    && reopened.in_iter(v).eq(compressed.in_iter(v)),
                "mmap-reopened graph decodes differently at node {v}"
            );
        }
    });

    let mut stages = Vec::new();
    let mut stage =
        |id: &str, millis: f64| stages.push(StageTiming { id: id.to_string(), millis });
    let mut bfs_sources = vec![0, 1, (n / 2) as NodeId, (n - 1) as NodeId];
    bfs_sources.retain(|&s| (s as usize) < n);
    bfs_sources.dedup();
    stage(
        "bfs-hybrid",
        timed("bfs hybrid (compressed vs flat)", &mut || {
            for &s in &bfs_sources {
                let over_compressed = bfs::hybrid_distances(&compressed, s, 0.05);
                let over_flat = bfs::hybrid_distances(&relabelled, s, 0.05);
                assert_eq!(
                    over_compressed, over_flat,
                    "compressed BFS diverged from flat CSR at source {s}"
                );
            }
        }),
    );
    let pr_params = PageRankParams { max_iterations: 50, ..PageRankParams::default() };
    let mut pr_scores = Vec::new();
    let pagerank_ms = timed("pagerank (compressed)", &mut || {
        let pr = pagerank(&compressed, &pr_params);
        assert_eq!(pr.scores.len(), n);
        pr_scores = pr.scores;
    });
    stage("pagerank", pagerank_ms);
    stage(
        "clustering",
        timed("clustering (compressed, 10k sample)", &mut || {
            let mut rng = StdRng::seed_from_u64(flags.seed);
            let ccs = clustering::sampled_cc(&compressed, 10_000, &mut rng);
            assert!(!ccs.is_empty());
        }),
    );
    let mut path_dist = None;
    stage(
        "paths",
        timed("sampled path lengths (64 sources)", &mut || {
            let mut rng = StdRng::seed_from_u64(flags.seed);
            path_dist = Some(paths::sampled_path_lengths(graph, 64, &mut rng));
        }),
    );
    let path_dist = path_dist.expect("paths sampled");
    let mut giant_share = 0.0;
    stage(
        "scc",
        timed("scc (kosaraju)", &mut || {
            let result = scc::kosaraju(graph);
            giant_share =
                result.sizes().into_iter().max().unwrap_or(0) as f64 / n.max(1) as f64;
        }),
    );
    let mut recip = 0.0;
    stage(
        "reciprocity",
        timed("global reciprocity", &mut || {
            recip = reciprocity::global_reciprocity(graph);
        }),
    );
    let mut fits = None;
    stage(
        "degree-fit",
        timed("degree power-law fits", &mut || {
            fits = Some(degree::degree_power_laws(graph, 10));
        }),
    );
    let (in_fit, out_fit) = fits.expect("degree fits");
    let mut motif_census = None;
    stage(
        "motifs",
        timed("motif census (compressed vs flat)", &mut || {
            let census = gplus::graph::motifs::census(&compressed);
            assert_eq!(
                census,
                gplus::graph::motifs::census(&relabelled),
                "compressed motif census diverged from the flat CSR"
            );
            motif_census = Some(census);
        }),
    );
    let motif_census = motif_census.expect("motifs censused");
    let motifs_digest = motif_census.content_digest();
    eprintln!("  motif census: {} triangles across 7 classes", motif_census.triangle_total());
    let kernels_ms: f64 = stages.iter().map(|s| s.millis).sum();

    // Thread-scaling record: rerun the two chunk-parallel kernels in a
    // 1-thread pool and keep the ratio in the report. The deterministic
    // chunk reduction makes this double as a correctness gate — both arms
    // must be bit-identical. Rerun timings stay out of `phases`/`stages`
    // so the bench-check share gate still sees exactly one run of each.
    let pool_threads = rayon::current_num_threads();
    let single = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("build single-thread rayon pool");
    let mut speedups = Vec::new();
    let mut speedup = |kernel: &str, wall_ms_1t: f64, wall_ms_nt: f64| {
        let ratio = wall_ms_1t / wall_ms_nt.max(f64::EPSILON);
        eprintln!("  {kernel} speedup: {ratio:.2}x at {pool_threads} threads");
        speedups.push(gplus::analysis::benchreport::KernelSpeedup {
            kernel: kernel.to_string(),
            wall_ms_1t,
            wall_ms_nt,
            threads: pool_threads,
            speedup: ratio,
        });
    };

    let mut pr_1t = Vec::new();
    let pagerank_1t_ms = timed("pagerank (1-thread rerun)", &mut || {
        pr_1t = single.install(|| pagerank(&compressed, &pr_params)).scores;
    });
    assert!(
        pr_1t.len() == pr_scores.len()
            && pr_1t.iter().zip(&pr_scores).all(|(a, b)| a.to_bits() == b.to_bits()),
        "pagerank scores differ between 1-thread and {pool_threads}-thread pools"
    );
    speedup("pagerank", pagerank_1t_ms, pagerank_ms);

    // the compress phase above bundles the relabel pass; time the encode
    // alone in both pools so the ratio measures the parallelised kernel
    let compressed_digest = compressed.content_digest();
    let mut encode_nt = None;
    let encode_nt_ms = timed("compress encode (pool rerun)", &mut || {
        encode_nt = Some(CompressedCsr::from_csr(&relabelled));
    });
    assert_eq!(
        encode_nt.expect("encoded").content_digest(),
        compressed_digest,
        "compressed encode is not reproducible within the same pool"
    );
    let mut encode_1t = None;
    let encode_1t_ms = timed("compress encode (1-thread rerun)", &mut || {
        encode_1t = Some(single.install(|| CompressedCsr::from_csr(&relabelled)));
    });
    assert_eq!(
        encode_1t.expect("encoded").content_digest(),
        compressed_digest,
        "compressed bytes differ between 1-thread and {pool_threads}-thread pools"
    );
    speedup("compress", encode_1t_ms, encode_nt_ms);

    let pagerank_digest = {
        let mut bytes = Vec::with_capacity(pr_scores.len() * 8);
        for s in &pr_scores {
            bytes.extend_from_slice(&s.to_bits().to_le_bytes());
        }
        gplus::graph::binfmt::fnv1a(&bytes)
    };

    drop(relabelled);
    drop(compressed);

    // Calibration: the 1M-node structural estimates must stay inside bands
    // bracketing the paper's measurements (α from Fig. 3, 32% reciprocity
    // from §3.3.2, the giant SCC of §3.3.4). Drift here means the generator
    // or a kernel regressed at scale even if the small tiers still pass.
    let mut calibration = Vec::new();
    let mut band = |what: &str, value: f64, lo: f64, hi: f64| {
        eprintln!("  calibration {what}: {value:.3} (band {lo}..{hi})");
        if !(value >= lo && value <= hi) {
            calibration
                .push(format!("{what} = {value:.3} outside calibration band {lo}..{hi}"));
        }
    };
    band("alpha_in", in_fit.alpha, 0.7, 2.2);
    band("alpha_out", out_fit.alpha, 0.7, 2.2);
    band("reciprocity", recip, 0.22, 0.45);
    band("giant_scc_share", giant_share, 0.45, 0.95);
    band("diameter_estimate", path_dist.max_distance as f64, 3.0, 30.0);

    let snap_dir = scale_dir.join("snapshot");
    let mut built = None;
    let snapshot_build_ms = timed("snapshot build", &mut || {
        built = Some(AnalysedSnapshot::build(&network));
    });
    let built = built.expect("snapshot built");
    // payload serialisation is a few hundred MB at 1M users, so the
    // snapshot digest is only computed when the smoke test asks for it
    let snapshot_digest = flags
        .options
        .get("--digest")
        .map(|_| gplus::graph::binfmt::fnv1a(&built.to_payload_bytes()));
    let snapshot_save_ms = timed("snapshot save", &mut || {
        built.save(&snap_dir).expect("save snapshot"); // sets mem.snapshot.bytes
    });
    let mut loaded = None;
    let snapshot_load_ms = timed("snapshot load (checksummed mmap)", &mut || {
        loaded = Some(AnalysedSnapshot::load(&snap_dir).expect("reload snapshot"));
    });
    let loaded = loaded.expect("snapshot loaded");
    assert_eq!(loaded.graph.node_count(), built.graph.node_count());
    let serving_users = loaded.graph.node_count() as u64;
    drop(built);

    let engine = QueryEngine::new(loaded, EngineConfig::default());
    let workload = WorkloadConfig {
        seed: flags.seed,
        queries: 2_000,
        user_space: serving_users,
        ..WorkloadConfig::default()
    };
    let serve_ms = timed("serve", &mut || {
        let report = run_workload(&engine, &workload, None);
        assert_eq!(report.failed, 0, "scale serving workload must not fail queries");
    });

    if let Some(rss) = peak_rss_bytes() {
        obs.gauge(gplus::obs::names::MEM_PEAK_RSS_BYTES).set(rss as f64);
        eprintln!("  peak rss: {:.0} MiB", rss as f64 / (1 << 20) as f64);
    }

    // the pool actually used, not the machine's core count: --threads runs
    // must be labelled with their real parallelism so bench-check can skip
    // the share gate when baseline and run were sized differently
    let threads = pool_threads;
    let phase = |id: &str, millis: f64| StageTiming { id: id.to_string(), millis };
    let bench = BenchReport {
        schema: gplus::analysis::benchreport::BENCH_SCHEMA.to_string(),
        git_sha: command_line("git", &["rev-parse", "HEAD"])
            .or_else(|| std::env::var("GITHUB_SHA").ok())
            .unwrap_or_else(|| "unknown".into()),
        toolchain: command_line("rustc", &["--version"]).unwrap_or_else(|| "unknown".into()),
        host: format!(
            "{}-{} ({} threads)",
            std::env::consts::OS,
            std::env::consts::ARCH,
            threads
        ),
        config: BenchConfig { n_users: flags.n, seed: flags.seed, threads },
        phases: vec![
            phase("generate", generate_ms),
            phase("compress", compress_ms),
            phase("graph-io", graph_io_ms),
            phase("kernels", kernels_ms),
            phase("snapshot-build", snapshot_build_ms),
            phase("snapshot-save", snapshot_save_ms),
            phase("snapshot-load", snapshot_load_ms),
            phase("serve", serve_ms),
        ],
        stages,
        // the metrics-overhead bound is owned by the standard tier, which
        // runs the analyse phase twice; at 1M a second full pass would
        // double the job for a bound already enforced elsewhere
        analyse_wall_ms: kernels_ms,
        analyse_wall_ms_metrics_off: kernels_ms,
        metrics_overhead_ratio: 1.0,
        metrics: obs.snapshot(),
        speedups,
    };

    eprintln!("  {} distinct metrics captured at scale", bench.metrics.distinct_metrics());
    if let Err(e) = std::fs::write(&out_path, bench.to_json()) {
        eprintln!("failed to write {out_path}: {e}");
        return 1;
    }
    println!("scale bench report written to {out_path}");
    if let Some(path) = flags.options.get("--digest") {
        let text = format!(
            "pagerank {pagerank_digest:016x}\ncompressed {compressed_digest:016x}\n\
             motifs {motifs_digest:016x}\nsnapshot {:016x}\n",
            snapshot_digest.expect("computed when --digest is set")
        );
        if let Err(e) = std::fs::write(path, &text) {
            eprintln!("failed to write digests to {path}: {e}");
            return 1;
        }
        eprintln!("kernel digests written to {path}");
    }
    if let Some(baseline_path) = flags.options.get("--write-baseline") {
        if let Err(e) = std::fs::write(baseline_path, bench.to_json()) {
            eprintln!("failed to write baseline {baseline_path}: {e}");
            return 1;
        }
        println!("baseline refreshed at {baseline_path}");
    }
    if calibration.is_empty() {
        0
    } else {
        for c in &calibration {
            eprintln!("CALIBRATION FAILURE: {c}");
        }
        eprintln!("bench-suite --scale failed {} calibration check(s)", calibration.len());
        1
    }
}

fn cmd_verify_kernels(args: &[String]) -> i32 {
    let flags =
        parse_flags(args, &["--seeds", "--nodes", "--preset", "--out"], &["--no-adversarial"]);
    let seeds: u64 = flags.options.get("--seeds").and_then(|v| v.parse().ok()).unwrap_or(8);
    let nodes: usize =
        flags.options.get("--nodes").and_then(|v| v.parse().ok()).unwrap_or(2_000);
    if nodes < 120 {
        eprintln!("--nodes must be at least 120 (the seeded celebrity roster)");
        return 2;
    }
    let mut cfg = SweepConfig::new(seeds, nodes);
    cfg.diff = DiffConfig::new(flags.seed);
    if let Some(p) = flags.options.get("--preset") {
        match Preset::parse(p) {
            Some(preset) => cfg.presets = vec![preset],
            None => {
                eprintln!("--preset expects one of: gplus, twitter, facebook");
                return 2;
            }
        }
    }
    if flags.switches.iter().any(|s| s == "--no-adversarial") {
        cfg.adversarial = false;
    }
    if let Some(dir) = flags.options.get("--out") {
        cfg.out_dir = dir.into();
    }

    eprintln!(
        "verify-kernels: {} seed(s) x {} preset(s) at {} nodes{} (sample seed {})",
        cfg.seeds,
        cfg.presets.len(),
        cfg.nodes,
        if cfg.adversarial { " + adversarial shapes" } else { "" },
        flags.seed
    );
    let outcome = match gplus::oracle::sweep::run(&cfg) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("verify-kernels failed to write reproducers: {e}");
            return 1;
        }
    };
    let snap = gplus::obs::global().snapshot();
    if outcome.failures.is_empty() {
        println!(
            "verify-kernels passed: {} graphs, {} kernel checks, {} oracle comparisons, \
             0 mismatches",
            outcome.graphs,
            outcome.checks,
            snap.counter(gplus::obs::names::ORACLE_CHECKED)
        );
        0
    } else {
        for (failure, path) in outcome.failures.iter().zip(&outcome.reproducers) {
            eprintln!("MISMATCH: {failure}");
            eprintln!("  reproducer: {}", path.display());
        }
        eprintln!(
            "verify-kernels failed: {} mismatch(es) across {} graphs ({} shrink steps spent); \
             reproducers in {}",
            outcome.failures.len(),
            outcome.graphs,
            snap.counter(gplus::obs::names::ORACLE_SHRINK_STEPS),
            cfg.out_dir.display()
        );
        1
    }
}

fn cmd_bench_check(args: &[String]) -> i32 {
    let flags = parse_flags(args, &["--baseline", "--current", "--threshold"], &[]);
    let baseline_path = flags
        .options
        .get("--baseline")
        .cloned()
        .unwrap_or_else(|| "BENCH_baseline.json".into());
    let current_path =
        flags.options.get("--current").cloned().unwrap_or_else(|| "BENCH_pipeline.json".into());
    let mut gate = BenchGate::default();
    if let Some(v) = flags.options.get("--threshold") {
        match v.parse::<f64>() {
            Ok(t) if t > 0.0 => gate.threshold = t,
            _ => {
                eprintln!("--threshold expects a positive fraction (e.g. 0.30)");
                return 2;
            }
        }
    }
    let load = |path: &str| -> Result<BenchReport, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        BenchReport::from_json(&text).map_err(|e| format!("{path}: {e}"))
    };
    let (baseline, current) = match (load(&baseline_path), load(&current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for err in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("bench-check: {err}");
            }
            return 1;
        }
    };
    eprintln!(
        "bench-check: {} (sha {}) vs baseline {} (sha {}), threshold {:.0}%",
        current_path,
        &current.git_sha[..current.git_sha.len().min(12)],
        baseline_path,
        &baseline.git_sha[..baseline.git_sha.len().min(12)],
        gate.threshold * 100.0
    );
    let failures = bench_compare(&baseline, &current, &gate);
    if failures.is_empty() {
        println!(
            "bench-check passed: {} phases, {} stages, {} metrics, overhead ratio {:.3}",
            current.phases.len(),
            current.stages.len(),
            current.metrics.distinct_metrics(),
            current.metrics_overhead_ratio
        );
        0
    } else {
        for f in &failures {
            eprintln!("REGRESSION: {f}");
        }
        eprintln!("bench-check failed with {} regression(s)", failures.len());
        1
    }
}
