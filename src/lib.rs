//! # gplus — a full reproduction of the IMC 2012 Google+ measurement study
//!
//! This meta-crate re-exports the whole workspace behind one dependency:
//!
//! * [`graph`] — the directed social-graph substrate (CSR storage, BFS,
//!   SCC, reciprocity, clustering, path sampling).
//! * [`stats`] — distributions, power-law fits, sampling, convergence.
//! * [`geo`] — circa-2011 country statistics, haversine miles, gazetteer.
//! * [`profiles`] — the Google+ profile model and its calibrated generator.
//! * [`synth`] — the synthetic Google+ 2011 network generator.
//! * [`service`] — the simulated Google+ frontend (truncation, privacy,
//!   failures, rate limiting).
//! * [`serve`] — the online query engine: analysed snapshots, epoch
//!   hot-swap, top-k/shortest-path/recommendation queries, and the
//!   seeded Zipf serving workload.
//! * [`crawler`] — the bidirectional BFS crawler and the lost-edge /
//!   bias estimators.
//! * [`obs`] — the observability layer: lock-light metrics registry,
//!   span timing, serialisable snapshots.
//! * [`oracle`] — the correctness net: naive reference kernels,
//!   metamorphic invariants, and the `verify-kernels` differential
//!   sweep with counterexample shrinking.
//! * [`analysis`] — every table and figure of the paper as a typed
//!   experiment, plus the end-to-end [`analysis::Reproduction`] pipeline.
//!
//! ## One-liner
//!
//! ```
//! use gplus::analysis::{Reproduction, ReproductionConfig};
//!
//! let report = Reproduction::run_ground_truth(&ReproductionConfig::quick(5_000, 42));
//! assert_eq!(report.table2.rows.len(), 17);
//! ```

pub use gplus_core as analysis;
pub use gplus_crawler as crawler;
pub use gplus_geo as geo;
pub use gplus_graph as graph;
pub use gplus_obs as obs;
pub use gplus_oracle as oracle;
pub use gplus_profiles as profiles;
pub use gplus_serve as serve;
pub use gplus_service as service;
pub use gplus_stats as stats;
pub use gplus_synth as synth;
