//! Tier-1 integration tests for the oracle layer: a small differential
//! sweep over every preset plus the adversarial shapes must come back
//! clean, and the obs counters must account for every check.

use gplus::oracle::sweep::{run, Preset, SweepConfig};
use gplus::oracle::{invariants, run_all, DiffConfig};
use gplus::synth::adversarial::adversarial_graphs;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("gplus-oracle-it-{tag}-{}", std::process::id()))
}

#[test]
fn small_sweep_is_clean_and_counts_every_check() {
    let obs = gplus::obs::global();
    let checked_before = obs.snapshot().counter(gplus::obs::names::ORACLE_CHECKED);

    let mut cfg = SweepConfig::new(1, 400);
    cfg.out_dir = temp_dir("sweep");
    cfg.diff = DiffConfig::quick(2012);
    let outcome = run(&cfg).expect("sweep runs");

    assert!(outcome.failures.is_empty(), "optimized kernels diverged: {:?}", outcome.failures);
    assert!(outcome.reproducers.is_empty());
    // 1 seed x 3 presets + the adversarial bestiary
    assert!(outcome.graphs > 3, "adversarial shapes must be swept too");
    let checked_after = obs.snapshot().counter(gplus::obs::names::ORACLE_CHECKED);
    assert!(
        checked_after - checked_before >= outcome.graphs as u64,
        "every graph must contribute oracle.checked bumps"
    );
    // a clean sweep leaves no droppings
    assert!(!cfg.out_dir.exists() || std::fs::read_dir(&cfg.out_dir).unwrap().next().is_none());
    let _ = std::fs::remove_dir_all(&cfg.out_dir);
}

#[test]
fn every_preset_and_adversarial_shape_passes_invariants_directly() {
    for preset in Preset::all() {
        let g = gplus::synth::SynthNetwork::generate(&preset.config(350, 9)).graph;
        let violations = invariants::check_graph(&g, 9);
        assert!(violations.is_empty(), "{}: {violations:?}", preset.as_str());
    }
    for (shape, g) in adversarial_graphs(48, 9) {
        let violations = invariants::check_graph(&g, 9);
        assert!(violations.is_empty(), "{shape}: {violations:?}");
        let mismatches = run_all(&g, &DiffConfig::quick(9));
        assert!(mismatches.is_empty(), "{shape}: {mismatches:?}");
    }
}
