//! Serving-layer integration: the online query engine over the wire
//! protocol, cross-checked against direct batch computation; workload
//! replay determinism; and epoch swaps under live concurrent traffic.

use gplus::graph::bfs;
use gplus::graph::NodeId;
use gplus::serve::{run_workload, AnalysedSnapshot, EngineConfig, QueryEngine, WorkloadConfig};
use gplus::service::wire::{Request, Response};
use gplus::service::{Direction, QueryError, QueryRequest, QueryResponse, RankMetric};
use gplus::synth::{SynthConfig, SynthNetwork};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

fn network() -> &'static SynthNetwork {
    static NET: OnceLock<SynthNetwork> = OnceLock::new();
    NET.get_or_init(|| SynthNetwork::generate(&SynthConfig::google_plus_2011(1_200, 77)))
}

fn snapshot() -> &'static AnalysedSnapshot {
    static SNAP: OnceLock<AnalysedSnapshot> = OnceLock::new();
    SNAP.get_or_init(|| AnalysedSnapshot::build(network()))
}

fn engine() -> QueryEngine {
    QueryEngine::new(snapshot().clone(), EngineConfig::default())
}

/// Sends a query through the full wire round trip and unwraps the
/// serving answer.
fn call(e: &QueryEngine, q: QueryRequest) -> QueryResponse {
    match e.call(&Request::Query(q)) {
        Response::Query(resp) => resp,
        other => panic!("expected a query response over the wire, got {other:?}"),
    }
}

#[test]
fn point_lookups_over_wire_match_ground_truth() {
    let e = engine();
    let g = &network().graph;
    for user in [0u64, 1, 5, 119, 600, 1_199] {
        let n = user as NodeId;
        match call(&e, QueryRequest::Profile { user }) {
            QueryResponse::Profile(p) => {
                assert_eq!(p.user, user);
                assert_eq!(
                    p.display_name.as_deref(),
                    Some(network().population.profile(n).display_name().as_str())
                );
                assert_eq!(p.in_degree, g.in_degree(n) as u64);
                assert_eq!(p.out_degree, g.out_degree(n) as u64);
                assert_eq!(p.country, network().population.profile(n).public_country());
            }
            other => panic!("expected profile for {user}, got {other:?}"),
        }
        match call(
            &e,
            QueryRequest::Circles { user, direction: Direction::OutCircles, limit: 10_000 },
        ) {
            QueryResponse::Circles { users, total, .. } => {
                let truth: Vec<u64> = g.out_neighbors(n).iter().map(|&v| v as u64).collect();
                assert_eq!(total, truth.len() as u64);
                assert_eq!(users, truth);
            }
            other => panic!("expected circles for {user}, got {other:?}"),
        }
        match call(&e, QueryRequest::Reciprocity { user }) {
            QueryResponse::Reciprocity { reciprocity, reciprocal_edges, .. } => {
                assert_eq!(reciprocity, gplus::graph::reciprocity::relation_reciprocity(g, n));
                let truth =
                    g.out_neighbors(n).iter().filter(|&&v| g.has_edge(v, n)).count() as u64;
                assert_eq!(reciprocal_edges, truth);
            }
            other => panic!("expected reciprocity for {user}, got {other:?}"),
        }
    }
}

#[test]
fn topk_over_wire_matches_direct_ranking() {
    let e = engine();
    let g = &network().graph;
    match call(&e, QueryRequest::TopK { metric: RankMetric::InDegree, k: 25, country: None }) {
        QueryResponse::TopK { entries, .. } => {
            assert_eq!(entries.len(), 25);
            // descending scores, correct values, strictly better than the tail
            for w in entries.windows(2) {
                assert!(w[0].score >= w[1].score);
            }
            for r in &entries {
                assert_eq!(r.score, g.in_degree(r.user as NodeId) as f64);
            }
            let floor = entries.last().unwrap().score;
            let better = g.nodes().filter(|&u| (g.in_degree(u) as f64) > floor).count();
            assert!(better <= 25, "{better} nodes beat the 25th entry");
        }
        other => panic!("expected topk, got {other:?}"),
    }
    // per-country restriction returns only that country's users
    let country = snapshot().country_top[0].country;
    match call(
        &e,
        QueryRequest::TopK { metric: RankMetric::PageRank, k: 10, country: Some(country) },
    ) {
        QueryResponse::TopK { entries, .. } => {
            assert!(!entries.is_empty());
            for r in &entries {
                assert_eq!(
                    network().population.profile(r.user as NodeId).public_country(),
                    Some(country)
                );
            }
        }
        other => panic!("expected topk, got {other:?}"),
    }
}

#[test]
fn shortest_paths_over_wire_match_scalar_bfs() {
    let e = engine();
    let g = &network().graph;
    let pairs =
        [(0u64, 7u64), (3, 1_150), (250, 0), (42, 42), (1_199, 1), (119, 120), (990, 991)];
    for (src, dst) in pairs {
        let truth = {
            let d = bfs::distances(g, src as NodeId)[dst as usize];
            (d != bfs::UNREACHABLE).then_some(d)
        };
        assert_eq!(
            call(&e, QueryRequest::ShortestPath { src, dst }),
            QueryResponse::ShortestPath { src, dst, distance: truth },
            "pair ({src},{dst})"
        );
    }
}

#[test]
fn recommendations_over_wire_match_batch_extension() {
    let e = engine();
    for user in [2u64, 50, 500] {
        match call(&e, QueryRequest::Recommend { user, k: 10 }) {
            QueryResponse::Recommend { recommendations, .. } => {
                let truth = gplus::analysis::extensions::recommend::recommend_for(
                    snapshot(),
                    user as NodeId,
                    10,
                );
                assert_eq!(recommendations.len(), truth.len());
                for (got, (v, common)) in recommendations.iter().zip(truth) {
                    assert_eq!(got.user, v as u64, "user {user}");
                    assert_eq!(got.score, common as f64);
                }
            }
            other => panic!("expected recommendations for {user}, got {other:?}"),
        }
    }
}

#[test]
fn unknown_and_oversized_ids_come_back_as_typed_errors() {
    let e = engine();
    let n = network().graph.node_count() as u64;
    for user in [n, u64::from(u32::MAX) + 1, u64::MAX] {
        assert_eq!(
            call(&e, QueryRequest::Degree { user }),
            QueryResponse::Error(QueryError::UnknownUser(user))
        );
    }
}

#[test]
fn seeded_workload_replays_byte_identically() {
    let config = WorkloadConfig {
        seed: 4_242,
        queries: 1_500,
        user_space: network().graph.node_count() as u64,
        ..WorkloadConfig::default()
    };
    let a = run_workload(&engine(), &config, None);
    let b = run_workload(&engine(), &config, None);
    assert_eq!(a.log, b.log, "query logs must be byte-identical");
    assert_eq!(a.cost_buckets, b.cost_buckets, "cost buckets must replay exactly");
    assert_eq!(a.per_kind, b.per_kind);
    assert_eq!(a.failed, 0);
    assert_eq!(b.failed, 0);
    // and the replay really covered the full mix
    for (kind, count) in &a.per_kind {
        assert!(*count > 0, "kind {kind} never generated in 1500 queries");
    }
}

#[test]
fn epoch_swap_mid_workload_fails_zero_queries() {
    // swap to a *different* network of equal size: every id stays
    // answerable, so any failure is a serving defect
    let other = SynthNetwork::generate(&SynthConfig::google_plus_2011(1_200, 78));
    let next = AnalysedSnapshot::build(&other);
    let e = engine();
    let config = WorkloadConfig {
        seed: 9,
        queries: 1_000,
        user_space: network().graph.node_count() as u64,
        ..WorkloadConfig::default()
    };
    let report = run_workload(&e, &config, Some((500, &next)));
    assert_eq!(report.swapped_at, Some(500));
    assert_eq!(report.failed, 0, "no query may fail across the swap");
    assert_eq!(e.epoch(), 1);
    assert_eq!(e.current().seed, 78, "the new snapshot is live after the run");
}

#[test]
fn concurrent_readers_never_observe_torn_snapshots() {
    // two snapshots with different node count, edge count and seed; a
    // torn view would mix fields of both. Every Epoch answer must match
    // one snapshot identity exactly.
    let small_net = SynthNetwork::generate(&SynthConfig::google_plus_2011(300, 1));
    let large_net = SynthNetwork::generate(&SynthConfig::google_plus_2011(900, 2));
    let small = AnalysedSnapshot::build(&small_net);
    let large = AnalysedSnapshot::build(&large_net);
    let identities = [
        (small.graph.node_count() as u64, small.graph.edge_count() as u64, small.seed),
        (large.graph.node_count() as u64, large.graph.edge_count() as u64, large.seed),
    ];
    assert_ne!(identities[0], identities[1]);

    let engine = Arc::new(QueryEngine::new(small.clone(), EngineConfig::default()));
    let stop = Arc::new(AtomicBool::new(false));

    let swapper = {
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut swaps = 0u64;
            while !stop.load(Ordering::Relaxed) {
                engine.swap(if swaps % 2 == 0 { large.clone() } else { small.clone() });
                swaps += 1;
            }
            swaps
        })
    };

    let readers: Vec<_> = (0..4)
        .map(|_| {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                let mut last_epoch = 0u64;
                for _ in 0..3_000 {
                    match engine.answer(&QueryRequest::Epoch) {
                        QueryResponse::Epoch { epoch, nodes, edges, seed } => {
                            assert!(
                                identities.contains(&(nodes, edges, seed)),
                                "torn snapshot: ({nodes}, {edges}, {seed}) matches \
                                 neither {identities:?}"
                            );
                            assert!(epoch >= last_epoch, "epoch went backwards");
                            last_epoch = epoch;
                        }
                        other => panic!("expected epoch answer, got {other:?}"),
                    }
                }
            })
        })
        .collect();

    for r in readers {
        r.join().expect("reader thread");
    }
    stop.store(true, Ordering::Relaxed);
    let swaps = swapper.join().expect("swapper thread");
    assert!(swaps > 0, "the swapper must have raced the readers");
    assert_eq!(engine.epoch(), swaps);
}
