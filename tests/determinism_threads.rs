//! Cross-crate thread-count determinism.
//!
//! The chunk-parallel kernels (pull PageRank, varint CSR compression, the
//! snapshot leaderboard build) reduce over fixed-size chunks merged in
//! chunk-index order, so their output is a pure function of the input —
//! never of the rayon pool that computed it. These tests pin that contract
//! across pools of 1, 2 and 8 workers and across repeated runs in the same
//! pool, at the bit level: score bits, compressed-stream digests, motif
//! census totals and participation vectors, and serialised snapshot
//! payload bytes.

use gplus::graph::builder::from_edges;
use gplus::graph::motifs;
use gplus::graph::pagerank::{pagerank, PageRankParams};
use gplus::graph::{CompressedCsr, NodeId};
use gplus::serve::AnalysedSnapshot;
use gplus::synth::{SynthConfig, SynthNetwork};
use proptest::prelude::*;
use std::sync::OnceLock;

/// One pool per tested width, built once — pool construction would
/// otherwise dominate the per-case cost.
fn pools() -> &'static [(usize, rayon::ThreadPool)] {
    static POOLS: OnceLock<Vec<(usize, rayon::ThreadPool)>> = OnceLock::new();
    POOLS.get_or_init(|| {
        [1usize, 2, 8]
            .into_iter()
            .map(|t| {
                let pool = rayon::ThreadPoolBuilder::new()
                    .num_threads(t)
                    .build()
                    .expect("build test pool");
                (t, pool)
            })
            .collect()
    })
}

/// Strategy: a small arbitrary digraph as (n, edge list). Sized past the
/// trivial range so graphs span multiple reduction chunks' worth of
/// irregular degree structure (dangling nodes, self-loops, duplicates).
fn arb_graph() -> impl Strategy<Value = (usize, Vec<(NodeId, NodeId)>)> {
    (2usize..48).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as NodeId, 0..n as NodeId), 0..(n * 4));
        (Just(n), edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pagerank_scores_identical_across_thread_counts((n, edges) in arb_graph()) {
        let g = from_edges(n, edges);
        let params = PageRankParams::default();
        let reference = pools()[0].1.install(|| pagerank(&g, &params));
        for (t, pool) in pools() {
            // two runs per pool: thread-count invariance and same-pool
            // repeatability are separate failure modes
            for run in 0..2 {
                let pr = pool.install(|| pagerank(&g, &params));
                prop_assert_eq!(pr.iterations, reference.iterations);
                prop_assert!(
                    pr.scores.iter().zip(&reference.scores)
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                    "pagerank scores diverged at {} threads (run {})", t, run
                );
            }
        }
    }

    #[test]
    fn compressed_bytes_identical_across_thread_counts((n, edges) in arb_graph()) {
        let g = from_edges(n, edges);
        let reference = pools()[0].1.install(|| CompressedCsr::from_csr(&g)).content_digest();
        for (t, pool) in pools() {
            for run in 0..2 {
                let digest = pool.install(|| CompressedCsr::from_csr(&g)).content_digest();
                prop_assert_eq!(
                    digest, reference,
                    "compressed bytes diverged at {} threads (run {})", t, run
                );
            }
        }
    }

    #[test]
    fn motif_census_identical_across_thread_counts((n, edges) in arb_graph()) {
        let g = from_edges(n, edges);
        let reference = pools()[0].1.install(|| motifs::census(&g));
        for (t, pool) in pools() {
            for run in 0..2 {
                let census = pool.install(|| motifs::census(&g));
                // totals AND the per-node participation vector, not just a
                // digest: a mismatch then names the diverging field
                prop_assert_eq!(
                    &census, &reference,
                    "motif census diverged at {} threads (run {})", t, run
                );
                prop_assert_eq!(census.content_digest(), reference.content_digest());
            }
        }
        // the compressed representation must census identically too — the
        // kernel is generic over Adjacency, so this pins both instantiations
        let compressed = CompressedCsr::from_csr(&g);
        for (t, pool) in pools() {
            let census = pool.install(|| motifs::census(&compressed));
            prop_assert_eq!(
                &census, &reference,
                "compressed-CSR census diverged at {} threads", t
            );
        }
    }
}

#[test]
fn snapshot_payload_identical_across_thread_counts() {
    for seed in [7u64, 2012] {
        let network = SynthNetwork::generate(&SynthConfig::google_plus_2011(5_000, seed));
        let reference =
            pools()[0].1.install(|| AnalysedSnapshot::build(&network)).to_payload_bytes();
        for (t, pool) in pools() {
            for run in 0..2 {
                let bytes =
                    pool.install(|| AnalysedSnapshot::build(&network)).to_payload_bytes();
                assert!(
                    bytes == reference,
                    "snapshot payload diverged at {t} threads (run {run}, seed {seed})"
                );
            }
        }
    }
}
