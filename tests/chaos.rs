//! Chaos suite: the fault-tolerant crawl engine under adversarial
//! weather.
//!
//! Every scenario runs a full crawl against a deliberately hostile
//! service — scheduled outages, correlated burst failures, permanently
//! failing celebrities, corrupted wire frames, kill-and-resume — and
//! asserts the engine's contract:
//!
//! * **coverage or accounting**: under every fault plan the crawl either
//!   keeps >0.9 node coverage or every missing user is accounted for in
//!   `CrawlStats` (`users_discovered == profiles_crawled +
//!   failed_profiles` when unbudgeted — nothing silently vanishes);
//! * **resume convergence**: a crawl killed at any checkpoint and resumed
//!   produces the identical canonical edge set to an uninterrupted run;
//! * **determinism**: with an interleaving-independent fault plan, crawl
//!   statistics are byte-identical across machine counts;
//! * **simulated time**: all backoff lands on the simulated clock — the
//!   suite finishes in test time, not crawl time;
//! * **observability**: every injected fault is mirrored, per cause, into
//!   the metrics registry — the snapshot and `ServiceStats` never disagree.

use gplus::crawler::{
    CheckpointError, CrawlCheckpoint, CrawlResult, Crawler, CrawlerConfig, RetryPolicy,
    CHECKPOINT_VERSION,
};
use gplus::service::{
    CorruptionPlan, FaultPlan, GooglePlusService, ServiceConfig, WireService,
};
use gplus::synth::{SynthConfig, SynthNetwork};

/// A service over a fresh synthetic network with the given fault plan
/// (and no legacy failure knobs — all weather comes from the plan).
fn service(n: usize, seed: u64, plan: FaultPlan) -> GooglePlusService {
    let net = SynthNetwork::generate(&SynthConfig::google_plus_2011(n, seed));
    GooglePlusService::new(
        net,
        ServiceConfig {
            failure_rate: 0.0,
            private_list_fraction: 0.0,
            fault_plan: plan,
            ..Default::default()
        },
    )
}

/// Canonical edge set under external user ids — the machine- and
/// order-independent fingerprint of a crawl.
fn canon(r: &CrawlResult) -> Vec<(u64, u64)> {
    let mut edges: Vec<(u64, u64)> =
        r.graph.edges().map(|(a, b)| (r.user_of(a), r.user_of(b))).collect();
    edges.sort_unstable();
    edges
}

/// The accounting invariant for unbudgeted crawls: every discovered user
/// was either fully crawled or explicitly failed.
fn assert_accounted(r: &CrawlResult, name: &str) {
    assert_eq!(
        r.stats.users_discovered,
        r.stats.profiles_crawled + r.stats.failed_profiles,
        "{name}: users neither crawled nor accounted as failed"
    );
}

#[test]
fn every_fault_plan_keeps_coverage_or_accounts_for_losses() {
    let plans: Vec<(&str, FaultPlan)> = vec![
        ("quiet", FaultPlan::none()),
        ("bernoulli30", FaultPlan::uniform(0.30)),
        ("outage", FaultPlan::none().with_outage(300, 80)),
        ("burst30", FaultPlan::none().with_burst(16, 0.30)),
        ("permafail", FaultPlan::none().with_permafail_users([2, 3, 4])),
        (
            "kitchen_sink",
            FaultPlan::uniform(0.10)
                .with_outage(500, 50)
                .with_burst(16, 0.20)
                .with_permafail_users([5]),
        ),
    ];
    for (name, plan) in plans {
        let svc = service(1_200, 70, plan);
        let r = Crawler::paper_setup().run(&svc);
        assert_accounted(&r, name);
        let cov = r.coverage(&svc.ground_truth().graph).node_coverage;
        assert!(
            cov > 0.9 || r.stats.failed_profiles > 0,
            "{name}: coverage {cov} with zero accounted failures"
        );
        assert!(r.stats.profiles_crawled > 0, "{name}: crawled nothing");
    }
}

#[test]
fn outage_mid_crawl_dead_letters_then_recovers_everyone() {
    // a 60-request outage with a tight transient budget: victims must go
    // to the dead-letter queue, and the end-of-frontier sweeps must
    // recover every one of them once the outage lifts
    let retry = RetryPolicy { transient_attempts: 4, ..RetryPolicy::default() };
    let svc = service(1_000, 71, FaultPlan::none().with_outage(400, 60));
    let crawler = Crawler::new(CrawlerConfig { retry, ..CrawlerConfig::default() });
    let r = crawler.run(&svc);
    assert!(
        r.stats.dead_letter_requeues > 0,
        "the outage should have exhausted someone's retry budget"
    );
    assert_eq!(r.stats.failed_profiles, 0, "sweeps must recover all outage victims");
    assert_accounted(&r, "outage");
    let cov = r.coverage(&svc.ground_truth().graph);
    assert!(cov.node_coverage > 0.95, "node coverage {}", cov.node_coverage);
}

#[test]
fn thirty_percent_bursts_still_converge() {
    let svc = service(1_000, 72, FaultPlan::none().with_burst(16, 0.30));
    let r = Crawler::paper_setup().run(&svc);
    assert!(r.stats.transient_errors > 0, "bursts should have hit the crawl");
    assert!(r.stats.backoff_ticks > 0, "failures must be answered with backoff");
    assert_accounted(&r, "burst30");
    let cov = r.coverage(&svc.ground_truth().graph);
    assert!(cov.node_coverage > 0.9, "node coverage {}", cov.node_coverage);
}

#[test]
fn permafailed_celebrities_are_accounted_not_hung() {
    // celebrities 2, 3, 4 never answer; the crawl must terminate, count
    // them as failed, and still recover their edges from the other side
    let retry = RetryPolicy { transient_attempts: 3, ..RetryPolicy::default() };
    let svc = service(900, 73, FaultPlan::none().with_permafail_users([2, 3, 4]));
    let crawler = Crawler::new(CrawlerConfig {
        retry,
        dead_letter_sweeps: 2,
        ..CrawlerConfig::default()
    });
    let r = crawler.run(&svc);
    assert_eq!(r.stats.failed_profiles, 3);
    assert_accounted(&r, "permafail");
    for user in [2u64, 3, 4] {
        let node = r.node_of(user).expect("permafailed users are still discovered");
        assert!(!r.pages.contains_key(&node), "user {user} must not have a page");
    }
    // node coverage barely dents: the three users are discovered via
    // everyone else's lists
    let cov = r.coverage(&svc.ground_truth().graph);
    assert!(cov.node_coverage > 0.95, "node coverage {}", cov.node_coverage);
}

#[test]
fn corrupted_wire_frames_are_retried_through() {
    let net = SynthNetwork::generate(&SynthConfig::google_plus_2011(800, 74));
    let inner = GooglePlusService::new(
        net,
        ServiceConfig { failure_rate: 0.0, private_list_fraction: 0.0, ..Default::default() },
    );
    let wire = WireService::with_corruption(inner, CorruptionPlan::new(7, 0.10));
    let r = Crawler::paper_setup().run(&wire);
    assert!(wire.frames_corrupted() > 0, "corruption should have fired");
    // every corrupted frame surfaced to the crawler as exactly one
    // transient error — nothing was silently swallowed or double-counted
    assert_eq!(r.stats.transient_errors, wire.frames_corrupted());
    assert_accounted(&r, "corrupt-wire");
    let cov = r.coverage(&wire.inner().ground_truth().graph);
    assert!(cov.node_coverage > 0.95, "node coverage {}", cov.node_coverage);
}

#[test]
fn kill_and_resume_matches_uninterrupted_run_under_faults() {
    let plan = FaultPlan::uniform(0.20);
    let uninterrupted = Crawler::paper_setup().run(&service(900, 75, plan.clone()));
    let crawler =
        Crawler::new(CrawlerConfig { checkpoint_every: Some(60), ..CrawlerConfig::default() });
    let (full, snapshots) = crawler.run_checkpointed(&service(900, 75, plan.clone()));
    assert_eq!(canon(&full), canon(&uninterrupted), "checkpointing must not perturb the crawl");
    assert!(snapshots.len() >= 3, "test premise: several checkpoints, got {}", snapshots.len());
    // kill at an early, a middle, and the last checkpoint; each resumed
    // crawl (fresh crawler process, same external service) must converge
    // to the identical canonical edge set
    let picks = [0, snapshots.len() / 2, snapshots.len() - 1];
    for &i in &picks {
        let resumed = Crawler::resume(&service(900, 75, plan.clone()), &snapshots[i]);
        assert_eq!(
            canon(&resumed),
            canon(&uninterrupted),
            "resume from checkpoint {i} diverged"
        );
        assert_eq!(resumed.stats.profiles_crawled, uninterrupted.stats.profiles_crawled);
        assert!(
            resumed.stats.sim_ticks >= snapshots[i].clock,
            "resumed clock must continue from the checkpoint"
        );
    }
}

#[test]
fn checkpoints_round_trip_and_version_gate_holds() {
    let crawler =
        Crawler::new(CrawlerConfig { checkpoint_every: Some(50), ..CrawlerConfig::default() });
    let (_, snapshots) = crawler.run_checkpointed(&service(600, 76, FaultPlan::none()));
    assert!(!snapshots.is_empty(), "test premise: at least one checkpoint");
    let cp = &snapshots[snapshots.len() - 1];
    assert_eq!(cp.version, CHECKPOINT_VERSION);

    let back = CrawlCheckpoint::from_json(&cp.to_json()).expect("round trip");
    assert_eq!(&back, cp);

    let mut wrong = cp.clone();
    wrong.version = 99;
    match CrawlCheckpoint::from_json(&wrong.to_json()) {
        Err(CheckpointError::Version { found: 99, supported: CHECKPOINT_VERSION }) => {}
        other => panic!("version gate failed: {other:?}"),
    }
    assert!(matches!(
        CrawlCheckpoint::from_json("not a checkpoint"),
        Err(CheckpointError::Parse(_))
    ));
}

#[test]
fn stats_are_byte_identical_across_machine_counts_under_user_keyed_faults() {
    // the Bernoulli and permafail modes key on (user, attempt), never on
    // global request order — so the entire CrawlStats (including retries
    // and simulated clock totals) must not depend on how many machines
    // interleave their requests
    let plan = FaultPlan::uniform(0.25).with_permafail_users([9]);
    assert!(plan.is_interleaving_independent());
    let run = |machines: usize| {
        let retry = RetryPolicy { transient_attempts: 6, ..RetryPolicy::default() };
        let svc = service(700, 77, plan.clone());
        let crawler =
            Crawler::new(CrawlerConfig { machines, retry, ..CrawlerConfig::default() });
        let r = crawler.run(&svc);
        serde_json::to_string(&r.stats).expect("stats serialise")
    };
    let one = run(1);
    assert_eq!(one, run(4), "1 vs 4 machines");
    assert_eq!(one, run(11), "1 vs 11 machines");
}

#[test]
fn fault_injection_metrics_mirror_service_stats_per_cause() {
    use std::sync::atomic::Ordering;
    use std::sync::Arc;

    // every injected fault must be visible twice and identically: once in
    // the service's own ServiceStats and once in the observability
    // registry, attributed to the same cause
    let plan = FaultPlan::uniform(0.15)
        .with_outage(300, 60)
        .with_burst(16, 0.25)
        .with_permafail_users([2, 3]);
    let net = SynthNetwork::generate(&SynthConfig::google_plus_2011(900, 79));
    let registry = Arc::new(gplus::obs::Registry::new());
    let svc = GooglePlusService::with_registry(
        net,
        ServiceConfig {
            failure_rate: 0.0,
            private_list_fraction: 0.0,
            fault_plan: plan,
            ..Default::default()
        },
        Arc::clone(&registry),
    );
    let retry = RetryPolicy { transient_attempts: 4, ..RetryPolicy::default() };
    let crawler = Crawler::new(CrawlerConfig {
        retry,
        dead_letter_sweeps: 2,
        ..CrawlerConfig::default()
    });
    let r = crawler.run(&svc);
    assert!(r.stats.transient_errors > 0, "the kitchen sink should have injected faults");

    let stats = svc.stats();
    let snap = registry.snapshot();
    for (metric, atomic) in [
        ("service.fault.injected.bernoulli_count", &stats.injected_bernoulli),
        ("service.fault.injected.outage_count", &stats.injected_outage),
        ("service.fault.injected.burst_count", &stats.injected_burst),
        ("service.fault.injected.permafail_count", &stats.injected_permafail),
        ("service.fault.injected.total_count", &stats.transient_failures),
    ] {
        assert_eq!(
            snap.counter(metric),
            atomic.load(Ordering::Relaxed),
            "{metric} diverged from ServiceStats"
        );
    }
    // the causes partition the total — nothing double-attributed or lost
    assert_eq!(
        snap.counter("service.fault.injected.total_count"),
        snap.counter("service.fault.injected.bernoulli_count")
            + snap.counter("service.fault.injected.outage_count")
            + snap.counter("service.fault.injected.burst_count")
            + snap.counter("service.fault.injected.permafail_count"),
        "per-cause fault metrics must partition the total"
    );
    assert!(snap.counter("service.fault.injected.bernoulli_count") > 0);
    assert!(snap.counter("service.fault.injected.permafail_count") > 0);
}

#[test]
fn backoff_happens_on_the_simulated_clock_not_the_wall_clock() {
    let svc = service(600, 78, FaultPlan::uniform(0.30));
    let r = Crawler::paper_setup().run(&svc);
    assert!(r.stats.backoff_ticks > 0, "a 30% failure rate must force backoff");
    assert!(
        r.stats.sim_ticks >= r.stats.backoff_ticks,
        "the shared clock accumulates at least the recorded backoff"
    );
    // Pinned to SimClock accounting only — no wall-clock margin to flake
    // under load. If backoff ever slept for real, the clock would stop
    // being a pure function of the fault schedule; so instead of bounding
    // elapsed time we assert tick-for-tick determinism: an identical
    // service must reproduce the exact simulated timeline.
    let svc2 = service(600, 78, FaultPlan::uniform(0.30));
    let r2 = Crawler::paper_setup().run(&svc2);
    assert_eq!(
        (r2.stats.sim_ticks, r2.stats.backoff_ticks, r2.stats.retries),
        (r.stats.sim_ticks, r.stats.backoff_ticks, r.stats.retries),
        "simulated time must be deterministic in the fault schedule"
    );
}
