//! Serve-path chaos suite: the fault-tolerant serving tier under
//! adversarial weather.
//!
//! The crawl chaos suite (`tests/chaos.rs`) batters the data-acquisition
//! side; this one batters the serving side, and asserts its contract:
//!
//! * **integrity or old bytes**: a corrupt, truncated, or torn snapshot
//!   is rejected with a typed error and the old epoch keeps serving
//!   *byte-identical* answers — a bad deploy is a counter, not an outage;
//! * **shed, never wrong**: under overload storms the engine sheds with
//!   [`QueryError::Overloaded`] / `DeadlineExceeded`, expensive kinds
//!   first, and every answer it *does* give matches the unthrottled
//!   engine exactly; after the storm, expensive kinds are admitted again;
//! * **kill-anywhere saves**: a process killed at any phase of the
//!   atomic save protocol leaves a directory that either loads the old
//!   snapshot in full or fails with a checksum error — never a silent
//!   hybrid;
//! * **observability**: every shed, rejection, and error lands in both
//!   the engine's exact stats and the metrics registry, and the two
//!   never disagree.

use gplus::obs::{names, Registry};
use gplus::serve::{
    corrupt_payload, interrupted_save, run_guarded, run_workload, truncate_payload,
    AnalysedSnapshot, EngineConfig, FlakyLoader, QueryEngine, SavePhase, SeededRng,
    SnapshotError, SwapGuard, WorkloadConfig, ZipfTable, QUERY_KINDS,
};
use gplus::service::{QueryError, QueryRequest, QueryResponse, RankMetric, TokenBucket};
use gplus::synth::{SynthConfig, SynthNetwork};
use std::sync::{Arc, Barrier};

fn build(n: usize, seed: u64) -> AnalysedSnapshot {
    AnalysedSnapshot::build(&SynthNetwork::generate(&SynthConfig::google_plus_2011(n, seed)))
}

fn fresh_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Byte-level fingerprints of a fixed probe set — content queries only
/// (no epoch probe, whose answer legitimately changes across applied
/// swaps), so equal fingerprints mean equal serving behaviour.
fn probe_digests(engine: &QueryEngine) -> Vec<Vec<u8>> {
    [
        QueryRequest::Profile { user: 0 },
        QueryRequest::Degree { user: 3 },
        QueryRequest::Reciprocity { user: 1 },
        QueryRequest::TopK { metric: RankMetric::PageRank, k: 10, country: None },
        QueryRequest::Recommend { user: 0, k: 5 },
    ]
    .iter()
    .map(|req| serde_json::to_vec(&engine.answer(req)).expect("responses serialize"))
    .collect()
}

#[test]
fn corrupt_snapshot_swap_is_rejected_and_old_epoch_serves_byte_identically() {
    let primary = build(420, 51);
    let next = build(460, 52);
    let dir = fresh_dir("gplus-chaos-serve-corrupt-swap");
    next.save(&dir).unwrap();
    let offsets = corrupt_payload(&dir, 7, 3).unwrap();
    assert!(!offsets.is_empty());

    let config = WorkloadConfig {
        seed: 99,
        queries: 600,
        user_space: 420,
        zipf_exponent: 1.0,
        ..WorkloadConfig::default()
    };
    let baseline = run_workload(
        &QueryEngine::new(primary.clone(), EngineConfig::default()),
        &config,
        None,
    );

    let engine = QueryEngine::new(primary, EngineConfig::default());
    let report = run_guarded(&engine, &config, Some((300, dir.as_path())));
    assert!(report.swap_rejected, "corrupt swap must be rejected");
    assert_eq!(report.swapped_at, None);
    assert_eq!(engine.epoch(), 0, "rejected swap must not consume an epoch");
    assert_eq!(report.log, baseline.log, "old epoch must keep serving byte-identical answers");
    assert_eq!(report.cost_buckets, baseline.cost_buckets);
    assert_eq!(report.failed, baseline.failed);
    assert_eq!(engine.stats().swaps_rejected, 1);
    assert_eq!(engine.stats().swaps_applied, 0);
    // the directory stays detectably corrupt for any fresh loader too
    assert!(matches!(AnalysedSnapshot::load(&dir), Err(SnapshotError::Checksum { .. })));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_snapshot_swap_is_rejected_the_same_way() {
    let primary = build(300, 53);
    let next = build(330, 54);
    let dir = fresh_dir("gplus-chaos-serve-truncated-swap");
    next.save(&dir).unwrap();
    truncate_payload(&dir, 11).unwrap();

    let engine = QueryEngine::new(primary, EngineConfig::default());
    let before = probe_digests(&engine);
    let guard = SwapGuard::new(&engine);
    assert!(matches!(guard.apply_dir(&dir), Err(SnapshotError::Checksum { .. })));
    assert_eq!(engine.epoch(), 0);
    assert_eq!(probe_digests(&engine), before, "answers must be untouched by the rejection");
    assert_eq!(engine.stats().swaps_rejected, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn overload_storm_sheds_expensive_first_never_wrongs_and_recovers() {
    let snap = build(500, 41);
    let reference = QueryEngine::new(snap.clone(), EngineConfig::default());
    let engine = QueryEngine::new(
        snap,
        EngineConfig { limiter: Some(TokenBucket::new(6.0, 2.0)), ..EngineConfig::default() },
    );

    // celebrity-skewed storm: hot low ids, alternating cheap point
    // lookups with expensive recommendation queries
    let zipf = ZipfTable::new(500, 1.2);
    let mut rng = SeededRng::new(2012);
    let mut shed = 0u64;
    let mut served = 0u64;
    for i in 0..400u64 {
        let user = zipf.sample(&mut rng);
        let req = if i % 2 == 0 {
            QueryRequest::Profile { user }
        } else {
            QueryRequest::Recommend { user, k: 5 }
        };
        match engine.answer(&req) {
            QueryResponse::Error(QueryError::Overloaded { retry_after }) => {
                assert!(
                    matches!(req, QueryRequest::Recommend { .. }),
                    "cheap point lookups must keep serving through the storm"
                );
                assert!(retry_after >= 1, "shed answers must carry a usable backoff hint");
                shed += 1;
            }
            resp => {
                assert_eq!(
                    resp,
                    reference.answer(&req),
                    "every non-shed answer must match the unthrottled engine"
                );
                served += 1;
            }
        }
    }
    assert!(shed > 0, "the storm must overwhelm the bucket");
    assert_eq!(served + shed, 400);
    let stats = engine.stats();
    assert_eq!(stats.queries, 400);
    assert_eq!(stats.shed_total, shed);
    assert_eq!(stats.shed_by_class[0], 0, "no cheap query may be shed");
    assert_eq!(stats.shed_by_class[2], shed, "all sheds must be expensive-class");

    // recovery: a cheap-only cool-down lets the bucket refill, after
    // which expensive kinds are admitted again
    for _ in 0..5 {
        assert!(!engine.answer(&QueryRequest::Epoch).is_error());
    }
    let resp = engine.answer(&QueryRequest::Recommend { user: 0, k: 5 });
    assert!(!resp.is_error(), "post-storm recommend must be admitted again, got {resp:?}");
}

#[test]
fn concurrent_storm_under_in_flight_cap_sheds_cleanly_and_never_wrongs() {
    let snap = build(400, 31);
    let reference = Arc::new(QueryEngine::new(snap.clone(), EngineConfig::default()));
    let engine = Arc::new(QueryEngine::new(
        snap,
        EngineConfig { max_in_flight: Some(2), ..EngineConfig::default() },
    ));
    const THREADS: usize = 4;
    const ROUNDS: u64 = 50;
    let barrier = Barrier::new(THREADS);

    let (served, shed) = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let engine = Arc::clone(&engine);
                let reference = Arc::clone(&reference);
                let barrier = &barrier;
                s.spawn(move || {
                    let zipf = ZipfTable::new(400, 1.2);
                    let mut rng = SeededRng::new(0xfeed ^ t as u64);
                    let mut served = 0u64;
                    let mut shed = 0u64;
                    barrier.wait();
                    for _ in 0..ROUNDS {
                        let req = QueryRequest::Profile { user: zipf.sample(&mut rng) };
                        match engine.answer(&req) {
                            QueryResponse::Error(QueryError::Overloaded { retry_after }) => {
                                assert_eq!(retry_after, 1, "in-flight sheds retry next tick");
                                shed += 1;
                            }
                            resp => {
                                assert_eq!(
                                    resp,
                                    reference.answer(&req),
                                    "admitted answers must never be wrong under contention"
                                );
                                served += 1;
                            }
                        }
                    }
                    (served, shed)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("storm thread must not panic"))
            .fold((0u64, 0u64), |(a, b), (c, d)| (a + c, b + d))
    });

    assert_eq!(served + shed, THREADS as u64 * ROUNDS, "every query accounted for");
    let stats = engine.stats();
    assert_eq!(stats.queries, THREADS as u64 * ROUNDS);
    assert_eq!(stats.shed_total, shed);
    assert_eq!(stats.shed_in_flight, shed);
    assert_eq!(stats.errors, shed, "sheds must be the only errors");
}

#[test]
fn kill_mid_swap_every_phase_leaves_old_or_detectable_state() {
    let old = build(300, 21);
    let new = build(340, 22);
    for phase in
        [SavePhase::PayloadTmpWritten, SavePhase::BothTmpsWritten, SavePhase::PayloadRenamed]
    {
        let dir = fresh_dir("gplus-chaos-serve-killswap");
        old.save(&dir).unwrap();
        interrupted_save(&new, &dir, phase).unwrap();

        let engine = QueryEngine::new(old.clone(), EngineConfig::default());
        let before = probe_digests(&engine);
        match SwapGuard::new(&engine).apply_dir(&dir) {
            Ok(_) => {
                // killed before any rename: the directory still holds the
                // old snapshot in full, so the reload is a benign no-op
                assert!(
                    matches!(phase, SavePhase::PayloadTmpWritten | SavePhase::BothTmpsWritten),
                    "phase {phase:?} must not have produced a loadable hybrid"
                );
                assert_eq!(*engine.current(), old, "pre-rename kill must serve old bytes");
            }
            Err(SnapshotError::Checksum { .. }) => {
                // new payload beside old meta: detectably inconsistent,
                // rejected, old epoch untouched
                assert_eq!(phase, SavePhase::PayloadRenamed);
                assert_eq!(engine.epoch(), 0);
                assert_eq!(engine.stats().swaps_rejected, 1);
            }
            Err(other) => panic!("phase {phase:?}: unexpected error {other}"),
        }
        assert_eq!(probe_digests(&engine), before, "phase {phase:?} must not change answers");

        // restart after a completed redeploy: the intact snapshot loads
        // and swaps in cleanly
        new.save(&dir).unwrap();
        SwapGuard::new(&engine).apply_dir(&dir).expect("redeployed snapshot must load");
        assert_eq!(*engine.current(), new);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn transient_load_failures_recover_with_retries_and_swap_applies() {
    let primary = build(300, 61);
    let next = build(330, 62);
    let dir = fresh_dir("gplus-chaos-serve-flaky-load");
    next.save(&dir).unwrap();

    let engine = QueryEngine::new(primary, EngineConfig::default());
    let mut loader = FlakyLoader::new(2);
    let mut loaded = None;
    for _ in 0..5 {
        match loader.load(&dir) {
            Ok(s) => {
                loaded = Some(s);
                break;
            }
            Err(SnapshotError::Io(_)) => continue,
            Err(other) => panic!("only injected io errors expected, got {other}"),
        }
    }
    let snapshot = loaded.expect("retries must outlast the injected failures");
    assert_eq!(loader.attempts(), 3, "two injected failures, then success");
    assert_eq!(SwapGuard::new(&engine).apply(snapshot).unwrap(), 1);
    assert_eq!(engine.current().graph.node_count(), 330);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn registry_counters_match_engine_stats_under_chaos() {
    // a private registry isolates this engine's counters so every
    // assertion is exact; the engine runs with all three overload layers
    // armed on a simulated clock for determinism
    let registry = Arc::new(Registry::new());
    let engine = QueryEngine::with_registry(
        build(260, 71),
        EngineConfig {
            limiter: Some(TokenBucket::new(10.0, 1.0)),
            deadline_us: Some(500),
            max_in_flight: None,
            simulated_clock: true,
        },
        Arc::clone(&registry),
    );

    // 3 recommends drain the bucket 10 -> 6 -> 3 -> 0 (cost 4 each,
    // refill +1 per tick) and each blows the 500us deadline (nominal
    // 1000us); the 4th finds only 1 token and is shed
    for _ in 0..3 {
        let resp = engine.answer(&QueryRequest::Recommend { user: 0, k: 3 });
        assert!(matches!(
            resp,
            QueryResponse::Error(QueryError::DeadlineExceeded {
                elapsed_us: 1_000,
                deadline_us: 500
            })
        ));
    }
    assert!(matches!(
        engine.answer(&QueryRequest::Recommend { user: 0, k: 3 }),
        QueryResponse::Error(QueryError::Overloaded { .. })
    ));
    // cheap lookups still clear the bar (cost 1 vs refill 1 per tick)
    for _ in 0..3 {
        assert!(!engine.answer(&QueryRequest::Degree { user: 1 }).is_error());
    }
    // one semantic error that is neither shed nor deadline
    assert!(matches!(
        engine.answer(&QueryRequest::Profile { user: u64::MAX }),
        QueryResponse::Error(QueryError::UnknownUser(_))
    ));
    // one applied and one rejected swap
    engine.swap(build(280, 72));
    let dir = fresh_dir("gplus-chaos-serve-parity-swap");
    build(290, 73).save(&dir).unwrap();
    corrupt_payload(&dir, 5, 1).unwrap();
    assert!(SwapGuard::new(&engine).apply_dir(&dir).is_err());
    let _ = std::fs::remove_dir_all(&dir);

    let stats = engine.stats();
    assert_eq!(stats.queries, 8);
    assert_eq!(stats.errors, 5);
    assert_eq!(stats.deadline_exceeded, 3);
    assert_eq!(stats.shed_total, 1);
    assert_eq!(stats.shed_by_class, [0, 0, 1]);
    assert_eq!(stats.shed_in_flight, 0);
    assert_eq!(stats.swaps_applied, 1);
    assert_eq!(stats.swaps_rejected, 1);

    // the registry must tell the exact same story, counter for counter
    let metrics = registry.snapshot();
    assert_eq!(metrics.counter("serve.query.count"), stats.queries);
    assert_eq!(metrics.counter("serve.query.error_count"), stats.errors);
    assert_eq!(metrics.counter(names::SERVE_SHED_TOTAL), stats.shed_total);
    assert_eq!(metrics.counter(names::SERVE_SHED_IN_FLIGHT), stats.shed_in_flight);
    assert_eq!(metrics.counter(names::SERVE_SHED_CHEAP), stats.shed_by_class[0]);
    assert_eq!(metrics.counter(names::SERVE_SHED_MODERATE), stats.shed_by_class[1]);
    assert_eq!(metrics.counter(names::SERVE_SHED_EXPENSIVE), stats.shed_by_class[2]);
    assert_eq!(metrics.counter(names::SERVE_DEADLINE_EXCEEDED), stats.deadline_exceeded);
    assert_eq!(metrics.counter(names::SERVE_SWAP_APPLIED), stats.swaps_applied);
    assert_eq!(metrics.counter(names::SERVE_SWAP_REJECTED), stats.swaps_rejected);
    for (i, kind) in QUERY_KINDS.iter().enumerate() {
        assert_eq!(
            metrics.counter(&format!("serve.query.{kind}.errors_count")),
            stats.errors_by_kind[i],
            "per-kind error counter for {kind}"
        );
    }
}
