//! Property-based tests over the core substrates, spanning crates.
//!
//! These complement the per-module unit suites with randomized invariants:
//! graph algorithms against brute-force oracles on arbitrary digraphs, and
//! estimator laws that must hold for any input.

use gplus::graph::relabel::Relabeling;
use gplus::graph::{bfs, builder::from_edges, clustering, mbfs, reciprocity, scc, wcc, NodeId};
use gplus::stats::{ks_distance, Ccdf, Cdf, Summary};
use proptest::prelude::*;

/// Strategy: a small arbitrary digraph as (n, edge list).
fn arb_graph() -> impl Strategy<Value = (usize, Vec<(NodeId, NodeId)>)> {
    (2usize..24).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as NodeId, 0..n as NodeId), 0..(n * 3));
        (Just(n), edges)
    })
}

/// Strategy: a digraph whose edges touch only the first half of the id
/// space, so the second half is guaranteed isolated nodes — plus a source
/// list of 65–200 entries (always past the 64-lane batch boundary) drawn
/// with replacement from *all* nodes, so lanes repeat sources and isolated
/// sources land in every chunk position.
fn arb_batched_case() -> impl Strategy<Value = (usize, Vec<(NodeId, NodeId)>, Vec<NodeId>)> {
    (8usize..24).prop_flat_map(|n| {
        let half = (n / 2) as NodeId;
        let edges = proptest::collection::vec((0..half, 0..half), 0..(n * 3));
        let sources = proptest::collection::vec(0..n as NodeId, 65..=200);
        (Just(n), edges, sources)
    })
}

proptest! {
    #[test]
    fn scc_partition_agrees_between_algorithms((n, edges) in arb_graph()) {
        let g = from_edges(n, edges);
        let a = scc::kosaraju(&g);
        let b = scc::tarjan(&g);
        prop_assert!(scc::same_partition(&a, &b));
    }

    #[test]
    fn scc_components_mutually_reachable((n, edges) in arb_graph()) {
        let g = from_edges(n, edges);
        let s = scc::kosaraju(&g);
        for u in g.nodes() {
            let reach = bfs::reachable_set(&g, u);
            for v in g.nodes() {
                if s.same_component(u, v) {
                    prop_assert!(reach.contains(&v), "{u} must reach {v}");
                }
            }
        }
    }

    #[test]
    fn wcc_coarser_than_scc((n, edges) in arb_graph()) {
        let g = from_edges(n, edges);
        let s = scc::kosaraju(&g);
        let w = wcc::weakly_connected_components(&g);
        prop_assert!(w.count <= s.count);
        for u in g.nodes() {
            for v in g.nodes() {
                if s.same_component(u, v) {
                    prop_assert_eq!(w.component[u as usize], w.component[v as usize]);
                }
            }
        }
    }

    #[test]
    fn global_reciprocity_counts_mutual_edges((n, edges) in arb_graph()) {
        let g = from_edges(n, edges);
        // brute force: count edges whose reverse exists
        let mut mutual = 0usize;
        for (u, v) in g.edges() {
            if g.has_edge(v, u) {
                mutual += 1;
            }
        }
        let expected = if g.edge_count() == 0 {
            0.0
        } else {
            mutual as f64 / g.edge_count() as f64
        };
        prop_assert!((reciprocity::global_reciprocity(&g) - expected).abs() < 1e-12);
    }

    #[test]
    fn rr_bounded_and_defined_iff_outgoing((n, edges) in arb_graph()) {
        let g = from_edges(n, edges);
        for u in g.nodes() {
            match reciprocity::relation_reciprocity(&g, u) {
                Some(rr) => {
                    prop_assert!(g.out_degree(u) > 0);
                    prop_assert!((0.0..=1.0).contains(&rr));
                }
                None => prop_assert_eq!(g.out_degree(u), 0),
            }
        }
    }

    #[test]
    fn clustering_matches_brute_force((n, edges) in arb_graph()) {
        let g = from_edges(n, edges);
        for u in g.nodes() {
            let outs: Vec<NodeId> =
                g.out_neighbors(u).iter().copied().filter(|&v| v != u).collect();
            let expected = if outs.len() <= 1 {
                None
            } else {
                let mut closed = 0u64;
                for &v in &outs {
                    for &w in &outs {
                        if v != w && g.has_edge(v, w) {
                            closed += 1;
                        }
                    }
                }
                Some(closed as f64 / (outs.len() * (outs.len() - 1)) as f64)
            };
            let got = clustering::clustering_coefficient(&g, u);
            match (got, expected) {
                (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-12),
                (None, None) => {}
                other => prop_assert!(false, "mismatch {other:?}"),
            }
        }
    }

    #[test]
    fn bfs_distances_satisfy_triangle_step((n, edges) in arb_graph()) {
        let g = from_edges(n, edges);
        let d = bfs::distances(&g, 0);
        // every edge (u,v) with u reachable: d[v] <= d[u] + 1
        for (u, v) in g.edges() {
            if d[u as usize] != bfs::UNREACHABLE {
                prop_assert!(d[v as usize] <= d[u as usize] + 1);
            }
        }
        // and every reachable non-source node has a predecessor at d-1
        for v in g.nodes() {
            let dv = d[v as usize];
            if v != 0 && dv != bfs::UNREACHABLE {
                let has_pred = g
                    .in_neighbors(v)
                    .iter()
                    .any(|&u| d[u as usize] != bfs::UNREACHABLE && d[u as usize] + 1 == dv);
                prop_assert!(has_pred, "node {v} at distance {dv} lacks predecessor");
            }
        }
    }

    #[test]
    fn hybrid_bfs_equals_classic((n, edges) in arb_graph(),
                                 threshold in 0.0f64..=1.0) {
        let g = from_edges(n, edges);
        for s in g.nodes() {
            prop_assert_eq!(
                bfs::hybrid_distances(&g, s, threshold),
                bfs::distances(&g, s)
            );
        }
    }

    #[test]
    fn batched_bfs_equals_per_source((n, edges) in arb_graph(),
                                     threshold in 0.0f64..=1.0) {
        let g = from_edges(n, edges);
        // every node as a source, in one batch call — lane results must
        // match the independent per-source traversals exactly
        let sources: Vec<NodeId> = g.nodes().collect();
        let batched = mbfs::multi_source_levels(&g, &sources, threshold);
        for (i, &s) in sources.iter().enumerate() {
            prop_assert_eq!(&batched[i], &bfs::levels(&g, s));
        }
    }

    #[test]
    fn batched_bfs_equals_per_source_past_the_lane_boundary(
        (n, edges, sources) in arb_batched_case(),
        threshold in 0.0f64..=1.0,
    ) {
        let g = from_edges(n, edges);
        prop_assert!(sources.len() > mbfs::BATCH_WIDTH);
        // isolated nodes exist by construction and appear as sources
        prop_assert!((n / 2..n).all(|v| g.out_degree(v as NodeId) == 0));
        let batched = mbfs::multi_source_levels(&g, &sources, threshold);
        prop_assert_eq!(batched.len(), sources.len());
        // every lane — including duplicates and the seam lanes around
        // multiples of BATCH_WIDTH — matches its independent traversal
        for (i, &s) in sources.iter().enumerate() {
            prop_assert_eq!(
                &batched[i],
                &bfs::levels(&g, s),
                "lane {} (source {}, chunk offset {})",
                i,
                s,
                i % mbfs::BATCH_WIDTH
            );
        }
    }

    #[test]
    fn relabeling_round_trips_and_preserves_structure((n, edges) in arb_graph()) {
        let g = from_edges(n, edges);
        let r = Relabeling::degree_descending(&g);
        let h = r.apply(&g);
        for v in g.nodes() {
            // old -> new -> old is the identity
            prop_assert_eq!(r.to_old(r.to_new(v)), v);
            // degrees (and hence edge structure) survive the permutation
            prop_assert_eq!(h.out_degree(r.to_new(v)), g.out_degree(v));
            prop_assert_eq!(h.in_degree(r.to_new(v)), g.in_degree(v));
        }
        // per-source traversal from a relabeled source sees the same
        // level profile: BFS level counts are isomorphism-invariant
        for s in g.nodes() {
            prop_assert_eq!(bfs::levels(&h, r.to_new(s)), bfs::levels(&g, s));
        }
    }

    #[test]
    fn undirected_view_symmetric((n, edges) in arb_graph()) {
        let g = from_edges(n, edges).undirected_view();
        for (u, v) in g.edges() {
            prop_assert!(g.has_edge(v, u));
            prop_assert!(u != v, "self-loops must be dropped");
        }
    }

    #[test]
    fn cdf_is_monotone_right_continuous_step(values in proptest::collection::vec(-1e6f64..1e6, 1..60)) {
        let cdf = Cdf::new(&values);
        let mut xs = values.clone();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = 0.0;
        for &x in &xs {
            let y = cdf.eval(x);
            prop_assert!(y >= prev - 1e-12);
            prev = y;
        }
        prop_assert!((cdf.eval(f64::MAX) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ccdf_complements_counting(values in proptest::collection::vec(0u64..1000, 1..60)) {
        let ccdf = Ccdf::from_counts(&values);
        for &x in values.iter().take(10) {
            let expected =
                values.iter().filter(|&&v| v >= x).count() as f64 / values.len() as f64;
            prop_assert!((ccdf.eval(x) - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn summary_merge_associative(a in proptest::collection::vec(-1e3f64..1e3, 0..30),
                                 b in proptest::collection::vec(-1e3f64..1e3, 0..30)) {
        let mut merged = Summary::of(&a);
        merged.merge(&Summary::of(&b));
        let mut all = a.clone();
        all.extend(&b);
        let whole = Summary::of(&all);
        prop_assert_eq!(merged.count(), whole.count());
        if whole.count() > 0 {
            prop_assert!((merged.mean() - whole.mean()).abs() < 1e-6);
            prop_assert!((merged.variance() - whole.variance()).abs() < 1e-6);
        }
    }

    #[test]
    fn ks_distance_is_a_metric_on_samples(a in proptest::collection::vec(-100f64..100.0, 1..30),
                                          b in proptest::collection::vec(-100f64..100.0, 1..30)) {
        let d = ks_distance(&a, &b);
        prop_assert!((0.0..=1.0).contains(&d));
        prop_assert!((ks_distance(&b, &a) - d).abs() < 1e-12);
        prop_assert_eq!(ks_distance(&a, &a), 0.0);
    }
}
