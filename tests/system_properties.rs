//! System-level property tests: invariants of the generator, the service,
//! the wire protocol, the crawler and the growth model under randomized
//! inputs. (Graph-algorithm properties live in `proptests.rs`.)

use bytes::BytesMut;
use gplus::crawler::{Crawler, CrawlerConfig};
use gplus::service::wire::{decode, encode, DecodeError, Request};
use gplus::service::{Direction, GooglePlusService, ServiceConfig};
use gplus::synth::{GrowthModel, SynthConfig, SynthNetwork};
use proptest::prelude::*;
use std::sync::OnceLock;

/// One shared mid-size network for the service/crawler properties —
/// generation dominates runtime, the property checks are cheap.
fn shared_net() -> &'static SynthNetwork {
    static NET: OnceLock<SynthNetwork> = OnceLock::new();
    NET.get_or_init(|| SynthNetwork::generate(&SynthConfig::google_plus_2011(2_000, 321)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn generator_invariants_hold_for_any_seed(seed in 0u64..1_000, n in 150usize..500) {
        let net = SynthNetwork::generate(&SynthConfig::google_plus_2011(n, seed));
        // node space matches the population
        prop_assert_eq!(net.graph.node_count(), n);
        prop_assert_eq!(net.population.len(), n);
        // no self-loops
        for (u, v) in net.graph.edges() {
            prop_assert_ne!(u, v);
        }
        // degree accounting
        let out_sum: usize = net.graph.nodes().map(|u| net.graph.out_degree(u)).sum();
        prop_assert_eq!(out_sum, net.graph.edge_count());
        // celebrities occupy the first ids and keep their identities
        prop_assert_eq!(net.population.celebrities.len(), 120);
        prop_assert_eq!(net.population.profile(0).display_name(), "Larry Page");
    }

    #[test]
    fn circle_paging_partitions_the_list(page_size in 1usize..64, user in 0u64..1_000) {
        let svc = GooglePlusService::new(
            shared_net().clone(),
            ServiceConfig {
                failure_rate: 0.0,
                private_list_fraction: 0.0,
                page_size,
                circle_list_limit: 10_000.max(page_size),
                ..Default::default()
            },
        );
        for direction in [Direction::InCircles, Direction::OutCircles] {
            let mut collected = Vec::new();
            let mut page_no = 0;
            loop {
                let page = svc.fetch_circle_page(user, direction, page_no).unwrap();
                // every page except possibly the last is exactly page_size
                if page.has_more {
                    prop_assert_eq!(page.users.len(), page_size);
                }
                collected.extend_from_slice(&page.users);
                if !page.has_more {
                    break;
                }
                page_no += 1;
            }
            let truth: Vec<u64> = match direction {
                Direction::InCircles => shared_net().graph.in_neighbors(user as u32),
                Direction::OutCircles => shared_net().graph.out_neighbors(user as u32),
            }
            .iter()
            .map(|&v| v as u64)
            .collect();
            prop_assert_eq!(collected, truth, "direction {:?}", direction);
        }
    }

    #[test]
    fn wire_requests_round_trip(user in any::<u64>(), page in any::<usize>(), dir in 0u8..2) {
        let direction =
            if dir == 0 { Direction::InCircles } else { Direction::OutCircles };
        for req in [Request::Profile { user }, Request::Circle { user, direction, page }] {
            let mut buf = BytesMut::new();
            encode(&req, &mut buf).unwrap();
            let back: Request = decode(&mut buf).unwrap();
            prop_assert_eq!(back, req);
            prop_assert!(buf.is_empty());
        }
    }

    #[test]
    fn wire_decoder_never_panics_on_noise(noise in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut buf = BytesMut::from(&noise[..]);
        // any outcome is fine; panicking or consuming past the buffer is not
        let before = buf.len();
        let result: Result<Request, DecodeError> = decode(&mut buf);
        if result.is_err() {
            prop_assert!(buf.len() <= before);
        }
    }

    #[test]
    fn budgeted_crawls_monotone_in_budget(budget in 10usize..300) {
        let svc = GooglePlusService::new(
            shared_net().clone(),
            ServiceConfig {
                failure_rate: 0.0,
                private_list_fraction: 0.0,
                ..Default::default()
            },
        );
        let crawler = Crawler::new(CrawlerConfig {
            machines: 1,
            max_profiles: Some(budget),
            ..Default::default()
        });
        let result = crawler.run(&svc);
        prop_assert!(result.crawled_count() <= budget);
        // discovery always covers the crawled set
        prop_assert!(result.discovered_count() >= result.crawled_count());
        // all ids discovered map back consistently
        for node in result.graph.nodes().take(50) {
            let user = result.user_of(node);
            prop_assert_eq!(result.node_of(user), Some(node));
        }
    }

    #[test]
    fn growth_snapshots_monotone(f1 in 0.05f64..0.95, delta in 0.02f64..0.5) {
        let net = shared_net();
        let model = GrowthModel::new(net, 0.4, 9);
        let f2 = (f1 + delta).min(1.0);
        let s1 = model.snapshot(net, f1);
        let s2 = model.snapshot(net, f2);
        prop_assert!(s1.node_count() <= s2.node_count());
        prop_assert!(s1.edge_count() <= s2.edge_count());
        for (u, v) in s1.edges() {
            prop_assert!(s2.has_edge(u, v), "snapshots must nest");
        }
    }
}

#[test]
fn crawl_result_json_round_trip() {
    let svc = GooglePlusService::new(
        shared_net().clone(),
        ServiceConfig { failure_rate: 0.0, private_list_fraction: 0.0, ..Default::default() },
    );
    let result = Crawler::new(CrawlerConfig { machines: 2, ..Default::default() }).run(&svc);
    let json = result.to_json();
    let back = gplus::crawler::CrawlResult::from_json(&json).expect("round trip");
    assert_eq!(back.user_ids, result.user_ids);
    assert_eq!(back.graph, result.graph);
    assert_eq!(back.stats, result.stats);
    assert_eq!(back.pages.len(), result.pages.len());
}
