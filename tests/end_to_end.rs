//! Cross-crate integration: the full generate → serve → crawl → analyse
//! pipeline, checked for internal consistency and against the paper's
//! qualitative findings.

use gplus::analysis::dataset::{CrawlDataset, GroundTruthDataset};
use gplus::analysis::{experiments::*, Reproduction, ReproductionConfig};
use gplus::crawler::{lost_edges, Crawler, CrawlerConfig};
use gplus::service::{GooglePlusService, ServiceConfig};
use gplus::synth::{SynthConfig, SynthNetwork};
use std::sync::OnceLock;

const N: usize = 20_000;
const SEED: u64 = 20121114; // IMC'12 opening day

fn network() -> &'static SynthNetwork {
    static NET: OnceLock<SynthNetwork> = OnceLock::new();
    NET.get_or_init(|| SynthNetwork::generate(&SynthConfig::google_plus_2011(N, SEED)))
}

fn crawl() -> &'static gplus::crawler::CrawlResult {
    static RES: OnceLock<gplus::crawler::CrawlResult> = OnceLock::new();
    RES.get_or_init(|| {
        let svc = GooglePlusService::new(
            network().clone(),
            ServiceConfig {
                failure_rate: 0.05,
                private_list_fraction: 0.03,
                ..Default::default()
            },
        );
        Crawler::new(CrawlerConfig::default()).run(&svc)
    })
}

#[test]
fn crawl_covers_nearly_everything_reachable() {
    let result = crawl();
    let truth = &network().graph;
    let cov = result.coverage(truth);
    assert!(cov.node_coverage > 0.95, "node coverage {}", cov.node_coverage);
    assert!(cov.edge_coverage > 0.90, "edge coverage {}", cov.edge_coverage);
    // failures and private lists actually occurred
    assert!(result.stats.transient_errors > 0);
    assert!(result.stats.private_list_users > 0);
}

#[test]
fn crawled_analyses_agree_with_ground_truth_analyses() {
    let truth_data = GroundTruthDataset::new(network());
    let crawl_data = CrawlDataset::new(crawl());

    // Table 2 fractions should agree closely (same population, same fields)
    let t2_truth = table2::run(&truth_data);
    let t2_crawl = table2::run(&crawl_data);
    for (a, b) in t2_truth.rows.iter().zip(&t2_crawl.rows) {
        assert!(
            (a.fraction - b.fraction).abs() < 0.02,
            "{:?}: truth {} vs crawl {}",
            a.attribute,
            a.fraction,
            b.fraction
        );
    }

    // structural metrics agree
    let p = table4::Table4Params { path_samples: 150, seed: 9, crawled_fraction: 1.0 };
    let t4_truth = table4::run(&truth_data, &p);
    let t4_crawl = table4::run(&crawl_data, &p);
    assert!((t4_truth.reciprocity - t4_crawl.reciprocity).abs() < 0.03);
    assert!((t4_truth.mean_degree - t4_crawl.mean_degree).abs() < 1.5);
}

#[test]
fn lost_edge_estimator_on_truncating_service() {
    // a tight cap forces truncation; the estimator must see it and the
    // true loss must be of the estimated order
    let svc = GooglePlusService::new(
        network().clone(),
        ServiceConfig {
            failure_rate: 0.0,
            private_list_fraction: 0.0,
            circle_list_limit: 200,
            page_size: 200,
            ..Default::default()
        },
    );
    let result = Crawler::new(CrawlerConfig::default()).run(&svc);
    let est = lost_edges::estimate(&result, 200);
    assert!(est.truncated_users > 0);
    let truth_edges = network().graph.edge_count() as u64;
    let collected = result.graph.edge_count() as u64;
    let actually_lost = truth_edges.saturating_sub(collected);
    // the estimator can't be wildly off the true loss
    assert!(
        est.lost_edges <= actually_lost * 3 + 100,
        "estimate {} vs actual {}",
        est.lost_edges,
        actually_lost
    );
}

#[test]
fn full_report_runs_and_renders_on_crawl() {
    let mut cfg = ReproductionConfig::quick(6_000, 77);
    cfg.service.failure_rate = 0.02;
    let report = Reproduction::run(&cfg);
    let text = report.render_all();
    for needle in [
        "Table 1",
        "Table 2",
        "Table 3",
        "Table 4",
        "Table 5",
        "Figure 2",
        "Figure 3",
        "Figure 4(a)",
        "Figure 5",
        "Figure 6",
        "Figure 7",
        "Figure 8",
        "Figure 9(a)",
        "Figure 10",
        "lost edges",
    ] {
        assert!(text.contains(needle), "rendered report missing {needle}");
    }
    // JSON round-trip of the full report
    let json = report.to_json();
    assert!(json.len() > 10_000);
}

#[test]
fn same_seed_same_network_different_seed_different() {
    let a = SynthNetwork::generate(&SynthConfig::google_plus_2011(2_000, 1));
    let b = SynthNetwork::generate(&SynthConfig::google_plus_2011(2_000, 1));
    let c = SynthNetwork::generate(&SynthConfig::google_plus_2011(2_000, 2));
    assert_eq!(a.graph, b.graph);
    assert_ne!(a.graph, c.graph);
}
