//! The committed bench baseline must stay loadable and self-consistent:
//! if the report schema or the stage list drifts, this fails in tier-1
//! instead of in the (slower) CI bench job.

use gplus::analysis::{bench_compare, BenchGate, BenchReport};

#[test]
fn committed_baseline_parses_and_passes_its_own_gate() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_baseline.json");
    let text = std::fs::read_to_string(path).expect("BENCH_baseline.json is committed");
    let baseline =
        BenchReport::from_json(&text).expect("baseline parses under the current schema");
    assert_eq!(baseline.config.n_users, 20_000, "baseline scale is the documented n=20k");
    assert_eq!(baseline.config.seed, 2012, "baseline seed is the documented 2012");
    assert!(
        baseline.metrics.distinct_metrics() >= 20,
        "baseline snapshot must itself clear the metric floor"
    );
    // a report always passes the gate against itself — if this fails the
    // gate logic or the baseline's internal consistency broke
    let failures = bench_compare(&baseline, &baseline, &BenchGate::default());
    assert!(failures.is_empty(), "{failures:?}");
    // all 15 analysis stages present, report order — a fresh run must be
    // able to match every baseline stage id
    let ids: Vec<&str> = baseline.stages.iter().map(|s| s.id.as_str()).collect();
    assert_eq!(ids, gplus::analysis::registry::STAGE_IDS.to_vec());
    assert!(
        baseline.metrics_overhead_ratio <= BenchGate::default().max_overhead_ratio,
        "baseline overhead ratio must satisfy the bound it enforces"
    );
    // every per-stage gauge must describe a real stage (forward direction:
    // a stale gauge left over from a renamed stage would otherwise survive
    // in the snapshot unnoticed) ...
    for name in baseline.metrics.gauges.keys() {
        if let Some(id) =
            name.strip_prefix("pipeline.stage.").and_then(|rest| rest.strip_suffix("_ms"))
        {
            assert!(
                baseline.stages.iter().any(|s| s.id == id),
                "gauge {name:?} has no matching stages[] entry"
            );
        }
    }
    // ... and every stage must have exported its gauge (reverse direction)
    for stage in &baseline.stages {
        let gauge = format!("pipeline.stage.{}_ms", stage.id);
        assert!(
            baseline.metrics.gauges.contains_key(&gauge),
            "stage {:?} did not export {gauge:?}",
            stage.id
        );
    }
    // the kernel-choice counters the gate requires must be present in the
    // committed snapshot itself, or bench-check would reject every refresh
    for name in BenchGate::default().required_counters {
        assert!(
            baseline.metrics.counters.contains_key(*name),
            "baseline is missing required kernel counter {name:?}"
        );
    }
}
