//! The paper's enumerated findings (§1's summary list and the section
//! headlines), asserted end-to-end on one ground-truth dataset.
//!
//! These are *shape* assertions: who wins, rough factors, orderings —
//! never exact numbers (our substrate is a calibrated simulation, not the
//! 2011 crawl).

use gplus::analysis::dataset::GroundTruthDataset;
use gplus::analysis::experiments::*;
use gplus::geo::Country;
use gplus::synth::{SynthConfig, SynthNetwork};
use std::sync::OnceLock;

fn network() -> &'static SynthNetwork {
    static NET: OnceLock<SynthNetwork> = OnceLock::new();
    NET.get_or_init(|| SynthNetwork::generate(&SynthConfig::google_plus_2011(60_000, 42)))
}

fn data() -> GroundTruthDataset<'static> {
    GroundTruthDataset::new(network())
}

#[test]
fn finding1_top_users_dominated_by_it() {
    // "the majority of the top users (7 out of 20) are well-known
    // individuals from information technology industry"
    let t1 = table1::run(&data(), 20);
    assert!((5..=10).contains(&t1.it_count), "IT count {}", t1.it_count);
    assert_eq!(t1.rows[0].name, "Larry Page");
    assert!(t1.rows.iter().any(|r| r.name == "Mark Zuckerberg"));
}

#[test]
fn finding2_tel_users_male_and_single() {
    // "a large fraction of the users who share telephone numbers are male
    // and single"
    let t3 = table3::run(&data());
    let male = &t3.gender[0];
    let single = &t3.relationship[0];
    assert!(male.tel > 0.70, "tel-users male fraction {}", male.tel);
    assert!(single.tel > single.all, "single overrepresented among tel-users");
}

#[test]
fn finding3_openness_varies_by_country() {
    // "users share strikingly different amounts of information to public
    // in their profiles depending the country they live in"
    let f8 = fig8::run(&data());
    let de = f8.mean_fields(Country::De).expect("DE present");
    let id = f8.mean_fields(Country::Id).expect("ID present");
    assert!(id > de + 0.8, "ID {id} vs DE {de}");
}

#[test]
fn finding4_distance_shapes_links() {
    // "physical distance is crucial in the likelihood of forming a social
    // link between two users"
    let f9 = fig9::run(&data(), &fig9::Fig9Params { max_pairs: 60_000, seed: 1 });
    assert!(
        f9.friends.eval(1_000.0) > f9.random.eval(1_000.0) + 0.15,
        "friends {} vs random {} within 1000 miles",
        f9.friends.eval(1_000.0),
        f9.random.eval(1_000.0)
    );
}

#[test]
fn finding5_national_vs_global_links_vary() {
    // "The fraction of global and national links also vary according the
    // countries"
    let f10 = fig10::run(&data());
    let us = f10.self_loop(Country::Us).unwrap();
    let gb = f10.self_loop(Country::Gb).unwrap();
    assert!(us > 0.55, "US self-loop {us}");
    assert!(gb < us - 0.2, "GB self-loop {gb}");
}

#[test]
fn reciprocity_above_twitter() {
    // "Google+ shows a higher level of reciprocity than Twitter" (32% vs
    // 22.1%)
    let f4 = fig4::run(&data(), &fig4::Fig4Params { cc_sample: 20_000, seed: 2 });
    assert!(
        f4.global_reciprocity > 0.221,
        "reciprocity {} should beat Twitter's",
        f4.global_reciprocity
    );
}

#[test]
fn path_length_slightly_higher_than_other_networks_shape() {
    // directed mean > undirected mean, both small-world
    let params = fig5::Fig5Params { k_start: 200, k_step: 200, k_max: 800, tol: 0.02, seed: 3 };
    let f5 = fig5::run(&data(), &params);
    let (_, dmean, _) = f5.directed_summary();
    let (_, umean, _) = f5.undirected_summary();
    assert!(dmean > umean);
    assert!(dmean < 9.0);
}

#[test]
fn low_internet_penetration_countries_adopt_gplus() {
    // "Google+ is popular in countries with relatively low Internet
    // penetration rate" — India's GPR tops the chart despite its IPR
    let f7 = fig7::run(&data());
    let ranking = f7.gpr_ranking();
    assert_eq!(ranking[0], Country::In);
    let india = f7.point(Country::In).unwrap();
    assert!(india.ipr < 0.2, "India's 2011 IPR was ~10%");
}
