//! The crawler over the wire protocol: every request/response crosses the
//! length-delimited byte boundary, and the crawl result must be identical
//! to the direct-call crawl — proof the protocol carries the full API.

use gplus::crawler::{mhrw, Crawler, CrawlerConfig, MhrwConfig};
use gplus::service::{GooglePlusService, ServiceConfig, WireService};
use gplus::synth::{SynthConfig, SynthNetwork};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn quiet(seed: u64) -> ServiceConfig {
    ServiceConfig {
        failure_rate: 0.0,
        private_list_fraction: 0.0,
        seed: seed ^ 0xabc,
        ..Default::default()
    }
}

#[test]
fn crawl_over_wire_equals_direct_crawl() {
    let net = SynthNetwork::generate(&SynthConfig::google_plus_2011(1_500, 61));
    let direct = GooglePlusService::new(net.clone(), quiet(61));
    let wire = WireService::new(GooglePlusService::new(net, quiet(61)));

    let crawler = Crawler::new(CrawlerConfig { machines: 4, ..Default::default() });
    let a = crawler.run(&direct);
    let b = crawler.run(&wire);

    assert_eq!(a.discovered_count(), b.discovered_count());
    assert_eq!(a.crawled_count(), b.crawled_count());
    assert_eq!(a.graph.edge_count(), b.graph.edge_count());
    // identical edge sets under the external user-id mapping
    let canon = |r: &gplus::crawler::CrawlResult| {
        let mut edges: Vec<(u64, u64)> =
            r.graph.edges().map(|(x, y)| (r.user_of(x), r.user_of(y))).collect();
        edges.sort_unstable();
        edges
    };
    assert_eq!(canon(&a), canon(&b));
    // profile payloads survive the protocol byte-for-byte
    for (&node, page) in a.pages.iter().take(50) {
        let user = a.user_of(node);
        let other = b.node_of(user).expect("same users discovered");
        assert_eq!(b.pages.get(&other), Some(page));
    }
}

#[test]
fn mhrw_over_wire_runs() {
    let net = SynthNetwork::generate(&SynthConfig::google_plus_2011(800, 62));
    let wire = WireService::new(GooglePlusService::new(net, quiet(62)));
    let cfg = MhrwConfig { steps: 300, burn_in: 50, thinning: 5, ..Default::default() };
    let out = mhrw(&wire, &cfg, &mut StdRng::seed_from_u64(3));
    assert!(!out.samples.is_empty());
    assert!(out.distinct_visited > 20);
}
