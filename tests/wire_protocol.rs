//! The crawler over the wire protocol: every request/response crosses the
//! length-delimited byte boundary, and the crawl result must be identical
//! to the direct-call crawl — proof the protocol carries the full API.

use bytes::{BufMut, BytesMut};
use gplus::crawler::{mhrw, Crawler, CrawlerConfig, MhrwConfig};
use gplus::service::wire::{decode, encode, DecodeError, Request, Response, MAX_FRAME_LEN};
use gplus::service::{
    CorruptionPlan, Direction, GooglePlusService, QueryError, QueryRequest, QueryResponse,
    RankMetric, ServiceConfig, WireService,
};
use gplus::synth::{SynthConfig, SynthNetwork};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn quiet(seed: u64) -> ServiceConfig {
    ServiceConfig {
        failure_rate: 0.0,
        private_list_fraction: 0.0,
        seed: seed ^ 0xabc,
        ..Default::default()
    }
}

#[test]
fn crawl_over_wire_equals_direct_crawl() {
    let net = SynthNetwork::generate(&SynthConfig::google_plus_2011(1_500, 61));
    let direct = GooglePlusService::new(net.clone(), quiet(61));
    let wire = WireService::new(GooglePlusService::new(net, quiet(61)));

    let crawler = Crawler::new(CrawlerConfig { machines: 4, ..Default::default() });
    let a = crawler.run(&direct);
    let b = crawler.run(&wire);

    assert_eq!(a.discovered_count(), b.discovered_count());
    assert_eq!(a.crawled_count(), b.crawled_count());
    assert_eq!(a.graph.edge_count(), b.graph.edge_count());
    // identical edge sets under the external user-id mapping
    let canon = |r: &gplus::crawler::CrawlResult| {
        let mut edges: Vec<(u64, u64)> =
            r.graph.edges().map(|(x, y)| (r.user_of(x), r.user_of(y))).collect();
        edges.sort_unstable();
        edges
    };
    assert_eq!(canon(&a), canon(&b));
    // profile payloads survive the protocol byte-for-byte
    for (&node, page) in a.pages.iter().take(50) {
        let user = a.user_of(node);
        let other = b.node_of(user).expect("same users discovered");
        assert_eq!(b.pages.get(&other), Some(page));
    }
}

#[test]
fn oversized_frame_length_is_rejected_not_allocated() {
    // a corrupt length prefix just over the cap must error cleanly —
    // never attempt a 16MB+ allocation on attacker-controlled input
    let mut buf = BytesMut::new();
    buf.put_u32((MAX_FRAME_LEN + 1) as u32);
    buf.put_slice(b"whatever");
    let r: Result<Request, _> = decode(&mut buf);
    assert_eq!(r.unwrap_err(), DecodeError::FrameTooLarge(MAX_FRAME_LEN as u64 + 1));
}

#[test]
fn truncated_length_prefix_waits_for_more_bytes() {
    // 0-3 bytes of length prefix: Incomplete every time, never a parse
    // error and never a panic
    for n in 0..4usize {
        let mut buf = BytesMut::from(&[0u8; 4][..n]);
        let r: Result<Request, _> = decode(&mut buf);
        assert_eq!(r.unwrap_err(), DecodeError::Incomplete, "prefix of {n} bytes");
        assert_eq!(buf.len(), n, "incomplete reads must not consume the buffer");
    }
}

#[test]
fn truncated_payload_waits_for_more_bytes() {
    let mut full = BytesMut::new();
    encode(&Request::Profile { user: 7 }, &mut full).unwrap();
    let mut partial = BytesMut::from(&full[..full.len() - 1]);
    let r: Result<Request, _> = decode(&mut partial);
    assert_eq!(r.unwrap_err(), DecodeError::Incomplete);
}

#[test]
fn invalid_json_payload_errors_cleanly() {
    let garbage = b"\xff\xfe{{{{";
    let mut buf = BytesMut::new();
    buf.put_u32(garbage.len() as u32);
    buf.put_slice(garbage);
    let r: Result<Request, _> = decode(&mut buf);
    assert!(matches!(r.unwrap_err(), DecodeError::Malformed(_)));
}

#[test]
fn valid_json_of_the_wrong_shape_errors_cleanly() {
    // parses as JSON, but is not a Request
    let payload = br#"{"Unknown":{"user":1}}"#;
    let mut buf = BytesMut::new();
    buf.put_u32(payload.len() as u32);
    buf.put_slice(payload);
    let r: Result<Request, _> = decode(&mut buf);
    assert!(matches!(r.unwrap_err(), DecodeError::Malformed(_)));
}

#[test]
fn query_request_frames_round_trip() {
    // every serving-query request variant crosses the wire byte-faithfully
    for req in [
        Request::Query(QueryRequest::Profile { user: 3 }),
        Request::Query(QueryRequest::Degree { user: 9 }),
        Request::Query(QueryRequest::Circles {
            user: 4,
            direction: Direction::OutCircles,
            limit: 10,
        }),
        Request::Query(QueryRequest::Reciprocity { user: 1 }),
        Request::Query(QueryRequest::TopK {
            metric: RankMetric::PageRank,
            k: 5,
            country: None,
        }),
        Request::Query(QueryRequest::ShortestPath { src: 1, dst: 2 }),
        Request::Query(QueryRequest::Recommend { user: 6, k: 3 }),
        Request::Query(QueryRequest::Epoch),
    ] {
        let mut buf = BytesMut::new();
        encode(&req, &mut buf).unwrap();
        let back: Request = decode(&mut buf).unwrap();
        assert_eq!(back, req);
        assert!(buf.is_empty(), "frame fully consumed");
    }
}

#[test]
fn query_error_response_frames_round_trip() {
    // the overload/deadline error shapes the engine sheds with must
    // survive the protocol: a client backing off needs retry_after intact
    for resp in [
        Response::Query(QueryResponse::Error(QueryError::Overloaded { retry_after: 17 })),
        Response::Query(QueryResponse::Error(QueryError::Overloaded { retry_after: u64::MAX })),
        Response::Query(QueryResponse::Error(QueryError::DeadlineExceeded {
            elapsed_us: 1_000,
            deadline_us: 500,
        })),
        Response::Query(QueryResponse::Error(QueryError::UnknownUser(u64::MAX))),
    ] {
        let mut buf = BytesMut::new();
        encode(&resp, &mut buf).unwrap();
        let back: Response = decode(&mut buf).unwrap();
        assert_eq!(back, resp);
    }
}

#[test]
fn truncated_query_frame_waits_byte_by_byte() {
    // every strict prefix of a Query frame is Incomplete — never a parse
    // error, never a consumed buffer
    let mut full = BytesMut::new();
    encode(
        &Request::Query(QueryRequest::TopK {
            metric: RankMetric::InDegree,
            k: 10,
            country: None,
        }),
        &mut full,
    )
    .unwrap();
    for cut in 0..full.len() {
        let mut partial = BytesMut::from(&full[..cut]);
        let r: Result<Request, _> = decode(&mut partial);
        assert_eq!(r.unwrap_err(), DecodeError::Incomplete, "cut at {cut}");
        assert_eq!(partial.len(), cut, "incomplete reads must not consume the buffer");
    }
}

#[test]
fn query_frame_with_oversized_length_prefix_is_rejected() {
    // a valid Query payload behind a forged over-cap length prefix must
    // error cleanly without attempting the advertised allocation
    let mut full = BytesMut::new();
    encode(&Request::Query(QueryRequest::Epoch), &mut full).unwrap();
    let forged_len = MAX_FRAME_LEN as u32 + 17;
    let mut forged = BytesMut::new();
    forged.put_u32(forged_len);
    forged.put_slice(&full[4..]);
    let r: Result<Request, _> = decode(&mut forged);
    assert_eq!(r.unwrap_err(), DecodeError::FrameTooLarge(u64::from(forged_len)));
}

#[test]
fn query_frame_with_bad_discriminant_is_malformed() {
    // valid JSON naming a query variant that does not exist
    let payload: &[u8] = br#"{"Query":{"Nonexistent":{"user":1}}}"#;
    let mut buf = BytesMut::new();
    buf.put_u32(payload.len() as u32);
    buf.put_slice(payload);
    let r: Result<Request, _> = decode(&mut buf);
    assert!(matches!(r.unwrap_err(), DecodeError::Malformed(_)));
    // and response-side: an unknown error discriminant inside Query
    let payload: &[u8] = br#"{"Query":{"Error":{"NotARealError":{}}}}"#;
    let mut buf = BytesMut::new();
    buf.put_u32(payload.len() as u32);
    buf.put_slice(payload);
    let r: Result<Response, _> = decode(&mut buf);
    assert!(matches!(r.unwrap_err(), DecodeError::Malformed(_)));
}

#[test]
fn query_frame_with_invalid_utf8_is_malformed_not_panicking() {
    // smash one mid-payload byte of a valid Query frame into an invalid
    // UTF-8 sequence: typed decode error, not a panic or a wrong answer
    let mut full = BytesMut::new();
    encode(&Request::Query(QueryRequest::Profile { user: 1 }), &mut full).unwrap();
    let mid = 4 + (full.len() - 4) / 2;
    full[mid] = 0xff;
    let r: Result<Request, _> = decode(&mut full);
    assert!(matches!(r.unwrap_err(), DecodeError::Malformed(_)));
}

#[test]
fn crawl_over_corrupt_wire_matches_clean_crawl() {
    // 10% of response frames damaged in transit: the retry policy rides
    // it out and the final graph is identical to the clean-transport one
    let net = SynthNetwork::generate(&SynthConfig::google_plus_2011(800, 63));
    let clean = WireService::new(GooglePlusService::new(net.clone(), quiet(63)));
    let corrupt = WireService::with_corruption(
        GooglePlusService::new(net, quiet(63)),
        CorruptionPlan::new(5, 0.10),
    );
    let crawler = Crawler::new(CrawlerConfig { machines: 4, ..Default::default() });
    let a = crawler.run(&clean);
    let b = crawler.run(&corrupt);
    assert!(corrupt.frames_corrupted() > 0, "corruption should have fired");
    assert!(b.stats.transient_errors > 0);
    let canon = |r: &gplus::crawler::CrawlResult| {
        let mut edges: Vec<(u64, u64)> =
            r.graph.edges().map(|(x, y)| (r.user_of(x), r.user_of(y))).collect();
        edges.sort_unstable();
        edges
    };
    assert_eq!(canon(&a), canon(&b));
}

#[test]
fn mhrw_over_wire_runs() {
    let net = SynthNetwork::generate(&SynthConfig::google_plus_2011(800, 62));
    let wire = WireService::new(GooglePlusService::new(net, quiet(62)));
    let cfg = MhrwConfig { steps: 300, burn_in: 50, thinning: 5, ..Default::default() };
    let out = mhrw(&wire, &cfg, &mut StdRng::seed_from_u64(3));
    assert!(!out.samples.is_empty());
    assert!(out.distinct_visited > 20);
}
