//! BFS crawl-bias study: the paper (§2.2) cites BFS's "bias towards
//! sampling high degree nodes" — with a simulated service we can measure
//! it directly, plus the lost-edge truncation estimate at several circle
//! caps.
//!
//! ```sh
//! cargo run --release --example crawl_bias [n_users] [seed]
//! ```

use gplus_crawler::bias::measure_bias;
use gplus_crawler::{lost_edges, Crawler, CrawlerConfig};
use gplus_service::{GooglePlusService, ServiceConfig};
use gplus_synth::{SynthConfig, SynthNetwork};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(30_000);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2012);

    println!("Generating network ({n} users, seed {seed}) ...");
    let net = SynthNetwork::generate(&SynthConfig::google_plus_2011(n, seed));
    let quiet =
        ServiceConfig { failure_rate: 0.0, private_list_fraction: 0.0, ..Default::default() };

    // --- degree bias at growing budgets ---
    let svc = GooglePlusService::new(net.clone(), quiet.clone());
    let budgets = [n / 100, n / 20, n / 4, n];
    println!("\nBFS degree bias (mean true in-degree of crawled vs population):");
    println!(
        "{:>10}  {:>8}  {:>12}  {:>10}",
        "budget", "crawled", "crawled mean", "bias ratio"
    );
    for p in measure_bias(&svc, &budgets, &CrawlerConfig::default()) {
        println!(
            "{:>10}  {:>8}  {:>12.2}  {:>10.2}",
            p.budget, p.crawled, p.crawled_mean_in_degree, p.bias_ratio
        );
    }

    // --- truncation losses at different circle-list caps ---
    println!("\nLost-edge estimates by circle-list cap (paper: cap 10,000 -> 1.6% lost):");
    println!("{:>8}  {:>12}  {:>12}  {:>10}", "cap", "trunc users", "lost edges", "lost frac");
    for cap in [100usize, 500, 2_000, 10_000] {
        let svc = GooglePlusService::new(
            net.clone(),
            ServiceConfig {
                circle_list_limit: cap,
                page_size: cap.min(1_000),
                ..quiet.clone()
            },
        );
        let result = Crawler::paper_setup().run(&svc);
        let est = lost_edges::estimate(&result, cap as u64);
        println!(
            "{:>8}  {:>12}  {:>12}  {:>9.2}%",
            cap,
            est.truncated_users,
            est.lost_edges,
            est.lost_fraction * 100.0
        );
    }

    // --- the crawl's own coverage ---
    let svc = GooglePlusService::new(net.clone(), quiet);
    let result = Crawler::paper_setup().run(&svc);
    let cov = result.coverage(&svc.ground_truth().graph);
    println!(
        "\nFull crawl coverage: {:.1}% of nodes, {:.1}% of edges, {} retries",
        cov.node_coverage * 100.0,
        cov.edge_coverage * 100.0,
        result.stats.retries
    );
}
