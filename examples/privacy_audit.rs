//! Privacy audit: the §3.2/§4.3 analyses as a standalone scenario — who
//! shares what, how tel-users differ, and how openness varies by country.
//!
//! ```sh
//! cargo run --release --example privacy_audit [n_users] [seed]
//! ```

use gplus_core::dataset::GroundTruthDataset;
use gplus_core::experiments::{fig2, fig8, table2, table3};
use gplus_geo::TOP10_COUNTRIES;
use gplus_synth::{SynthConfig, SynthNetwork};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(200_000);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2012);

    println!("Generating population ({n} users, seed {seed}) ...\n");
    let net = SynthNetwork::generate(&SynthConfig::google_plus_2011(n, seed));
    let data = GroundTruthDataset::new(&net);

    // What do users expose? (Table 2)
    println!("{}", table2::render(&table2::run(&data)));

    // The risk-taking tel-user population (Table 3, Figure 2)
    println!("{}", table3::render(&table3::run(&data)));
    println!("{}", fig2::render(&fig2::run(&data)));

    // Openness by country (Figure 8)
    let f8 = fig8::run(&data);
    println!("{}", fig8::render(&f8));
    println!("Openness ranking (mean public fields, located users):");
    let mut ranked: Vec<_> =
        TOP10_COUNTRIES.iter().filter_map(|&c| f8.mean_fields(c).map(|m| (c, m))).collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite means"));
    for (i, (c, m)) in ranked.iter().enumerate() {
        println!("  {:>2}. {}  {:.2}", i + 1, c.name(), m);
    }
    println!("(paper: Indonesia and Mexico most open; Germany most conservative)");
}
