//! The full paper reproduction: generate → serve → crawl → analyse every
//! table and figure, printing paper-vs-measured renderings and writing the
//! typed results as JSON.
//!
//! ```sh
//! cargo run --release --example full_reproduction [n_users] [seed] [out.json]
//! ```
//!
//! This is the faithful path: the analyses run over data collected by the
//! simulated bidirectional BFS crawl (11 workers, retries, pagination,
//! 10,000-entry circle-list truncation), not over ground truth.

use gplus_core::{Reproduction, ReproductionConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(100_000);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2012);
    let out_path = args.next();

    eprintln!(
        "Running the full pipeline at {n} users (seed {seed}) — this crawls every profile ..."
    );
    let config = ReproductionConfig::quick(n, seed);
    let report = Reproduction::run(&config);

    println!("{}", report.render_all());

    if let Some(path) = out_path {
        std::fs::write(&path, report.to_json_with_timings()).expect("write JSON report");
        eprintln!("JSON report written to {path}");
    }
}
