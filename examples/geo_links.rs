//! Geography of friendship: the §4.4/§4.5 analyses — path miles, country
//! adoption, penetration economics, and the country-to-country link matrix.
//!
//! ```sh
//! cargo run --release --example geo_links [n_users] [seed]
//! ```

use gplus_core::dataset::GroundTruthDataset;
use gplus_core::experiments::{fig10, fig6, fig7, fig9};
use gplus_geo::Country;
use gplus_synth::{SynthConfig, SynthNetwork};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(150_000);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2012);

    println!("Generating population ({n} users, seed {seed}) ...\n");
    let net = SynthNetwork::generate(&SynthConfig::google_plus_2011(n, seed));
    let data = GroundTruthDataset::new(&net);

    // Where do users live? (Figure 6)
    println!("{}", fig6::render(&fig6::run(&data)));

    // Penetration economics (Figure 7)
    let f7 = fig7::run(&data);
    println!("{}", fig7::render(&f7));
    println!(
        "GPR top three: {:?} (paper: India first)\n",
        &f7.gpr_ranking()[..3].iter().map(|c| c.code()).collect::<Vec<_>>()
    );

    // Distance and friendship (Figure 9)
    let f9 = fig9::run(&data, &fig9::Fig9Params { max_pairs: 150_000, seed });
    println!("{}", fig9::render(&f9));

    // The country link matrix (Figure 10)
    let f10 = fig10::run(&data);
    println!("{}", fig10::render(&f10));
    println!(
        "self-loops: US {:.2} (paper 0.79), GB {:.2} (paper 0.30), CA {:.2} (paper 0.33)",
        f10.self_loop(Country::Us).unwrap_or(f64::NAN),
        f10.self_loop(Country::Gb).unwrap_or(f64::NAN),
        f10.self_loop(Country::Ca).unwrap_or(f64::NAN)
    );
}
