//! Quickstart: generate a synthetic Google+ network, run the headline
//! analyses, and print paper-vs-measured summaries.
//!
//! ```sh
//! cargo run --release --example quickstart [n_users] [seed]
//! ```

use gplus_core::dataset::GroundTruthDataset;
use gplus_core::experiments::{fig3, fig4, table1, table4};
use gplus_core::paper::structure;
use gplus_synth::{SynthConfig, SynthNetwork};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(50_000);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2012);

    println!("Generating a Google+-2011-calibrated network: {n} users, seed {seed} ...");
    let net = SynthNetwork::generate(&SynthConfig::google_plus_2011(n, seed));
    println!(
        "  {} nodes, {} directed edges ({:.1} per user)\n",
        net.node_count(),
        net.edge_count(),
        net.edge_count() as f64 / net.node_count() as f64
    );

    let data = GroundTruthDataset::new(&net);

    // Who are the most popular users? (Table 1)
    let t1 = table1::run(&data, 20);
    println!("{}", table1::render(&t1));

    // Degree distributions and power-law fits (Figure 3)
    let f3 = fig3::run(&data, &fig3::Fig3Params::default());
    println!(
        "Degree power laws: alpha_in {:.2} (paper {}), alpha_out {:.2} (paper {})\n",
        f3.in_fit.alpha,
        structure::ALPHA_IN,
        f3.out_fit.alpha,
        structure::ALPHA_OUT
    );

    // Reciprocity / clustering / components (Figure 4)
    let f4 = fig4::run(&data, &fig4::Fig4Params { cc_sample: 50_000, seed });
    println!(
        "Reciprocity {:.1}% (paper 32%); users with RR>0.6: {:.1}% (paper >60%)",
        f4.global_reciprocity * 100.0,
        f4.rr_above_06 * 100.0
    );
    println!(
        "Clustering: CC>0.2 for {:.1}% of sampled users (paper 40%)",
        f4.cc_above_02 * 100.0
    );
    println!(
        "SCCs: {} components, giant covers {:.0}% of nodes (paper ~72%)\n",
        f4.scc_count,
        f4.giant_scc_fraction * 100.0
    );

    // The Table-4 row
    let t4 = table4::run(&data, &table4::Table4Params::default());
    println!("{}", table4::render(&t4));
}
