//! Growth study (the paper's §7 future work): adoption-phase snapshots,
//! densification, path-length shrinkage, and a ranking-robustness check.
//!
//! ```sh
//! cargo run --release --example growth_study [n_users] [seed]
//! ```

use gplus_core::dataset::GroundTruthDataset;
use gplus_core::extensions::{growth, rankings, structure};
use gplus_synth::{SynthConfig, SynthNetwork};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(40_000);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2012);

    println!("Generating network ({n} users, seed {seed}) ...\n");
    let net = SynthNetwork::generate(&SynthConfig::google_plus_2011(n, seed));

    // adoption-phase snapshots (§7: "multiple snapshots of the Google+
    // topology ... over various adoption phases")
    let g = growth::run(&net, &growth::GrowthParams::default());
    println!("{}", growth::render(&g));

    // is Table 1's in-degree ranking robust to the popularity measure?
    let data = GroundTruthDataset::new(&net);
    let r = rankings::run(&data, 20);
    println!("{}", rankings::render(&r, &data));

    // structural extras across the three presets
    let tw = SynthNetwork::generate(&SynthConfig::twitter_like(n / 2, seed));
    let fb = SynthNetwork::generate(&SynthConfig::facebook_like(n / 2, seed));
    let rows = vec![
        structure::measure("google_plus", &net.graph),
        structure::measure("twitter_like", &tw.graph),
        structure::measure("facebook_like", &fb.graph),
    ];
    println!("{}", structure::render(&rows));
}
