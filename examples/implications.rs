//! The §6 "Implications" section, made executable: recommendation
//! locality per country and information-cascade reach from hubs.
//!
//! ```sh
//! cargo run --release --example implications [n_users] [seed]
//! ```

use gplus_core::dataset::GroundTruthDataset;
use gplus_core::extensions::{cascade, recommend};
use gplus_synth::{SynthConfig, SynthNetwork};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(40_000);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2012);

    println!("Generating network ({n} users, seed {seed}) ...\n");
    let net = SynthNetwork::generate(&SynthConfig::google_plus_2011(n, seed));
    let data = GroundTruthDataset::new(&net);

    // "it may make sense to recommend domestic users ... for countries
    // that have high degree of self-loop such as Brazil and India"
    let r = recommend::run(&data, &recommend::RecommendParams::default());
    println!("{}", recommend::render(&r));

    // "hubs play a central role in information propagation"
    let c = cascade::run(&data, &cascade::CascadeParams::default());
    println!("{}", cascade::render(&c));
}
